//! 54-bit truncated MACs and canonical MAC-input serialization.
//!
//! The paper (after Morphable Counters) argues a 54-bit MAC is sufficient,
//! leaving 10 unused bits in the 64-bit MAC field of a node. STAR stores
//! the 10 LSBs of the parent node's corresponding counter there
//! (counter-MAC synergization). [`Mac54`] is the truncated tag;
//! combination with the 10 spare bits lives in `star-metadata`'s
//! `MacField`.

use crate::siphash::SipHash24;

/// Mask selecting the low 54 bits of a 64-bit word.
pub const MAC54_MASK: u64 = (1 << 54) - 1;

/// The key for node/data MAC generation.
///
/// In real hardware this key lives inside the processor; here it is a
/// SipHash key pair derived from a seed.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MacKey {
    hasher: SipHash24,
}

impl core::fmt::Debug for MacKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MacKey").finish_non_exhaustive()
    }
}

impl MacKey {
    /// Derives a key deterministically from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            hasher: SipHash24::new(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                (!seed).wrapping_mul(0xc2b2_ae3d_27d4_eb4f) ^ 0x165667b19e3779f9,
            ),
        }
    }

    /// Hashes raw bytes under this key.
    pub fn hash_bytes(&self, data: &[u8]) -> u64 {
        self.hasher.hash(data)
    }
}

/// A 54-bit message authentication code.
///
/// ```
/// use star_crypto::mac::Mac54;
/// let m = Mac54::from_u64(u64::MAX);
/// assert_eq!(m.as_u64(), (1 << 54) - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Mac54(u64);

impl Mac54 {
    /// Truncates `value` to 54 bits.
    pub fn from_u64(value: u64) -> Self {
        Self(value & MAC54_MASK)
    }

    /// The tag value (always `< 2^54`).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl core::fmt::LowerHex for Mac54 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A canonical, injective serializer for MAC inputs.
///
/// Every field is written with a domain-separating tag byte and (for byte
/// strings) an explicit length, so distinct field sequences can never
/// produce the same byte stream. The paper's MACs hash combinations of a
/// node address, the node's counters, one counter in the parent node and
/// (for STAR) the stored LSBs; this builder covers all of them.
///
/// ```
/// use star_crypto::mac::{MacInput, MacKey};
/// let key = MacKey::from_seed(1);
/// let a = MacInput::new().u64(1).u64(2).mac54(&key);
/// let b = MacInput::new().u64(2).u64(1).mac54(&key);
/// assert_ne!(a, b);
/// ```
#[derive(Clone)]
pub struct MacInput {
    len: usize,
    buf: [u8; MAC_INPUT_CAP],
}

/// Inline serialization capacity: MAC inputs are built on the engine's
/// per-write path, so the builder keeps its bytes on the stack instead
/// of heap-allocating. The largest real input is a node MAC (~109
/// bytes); tests feed data fields up to 256 bytes (tag + length + data
/// = 265), and the capacity leaves headroom above that.
const MAC_INPUT_CAP: usize = 320;

impl Default for MacInput {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for MacInput {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MacInput").field("len", &self.len).finish()
    }
}

impl MacInput {
    /// Creates an empty input.
    pub fn new() -> Self {
        Self {
            len: 0,
            buf: [0; MAC_INPUT_CAP],
        }
    }

    /// Appends raw bytes to the serialization.
    ///
    /// # Panics
    ///
    /// Panics if the input exceeds [`MAC_INPUT_CAP`] — every caller
    /// serializes a bounded field set, so overflow is a programming
    /// error, not a runtime condition.
    fn push(&mut self, bytes: &[u8]) {
        let end = self.len + bytes.len();
        assert!(
            end <= MAC_INPUT_CAP,
            "MAC input overflow: {end} bytes exceeds the {MAC_INPUT_CAP}-byte \
             inline capacity — raise MAC_INPUT_CAP"
        );
        self.buf[self.len..end].copy_from_slice(bytes);
        self.len = end;
    }

    /// Appends a 64-bit field.
    pub fn u64(mut self, value: u64) -> Self {
        self.push(&[0x01]);
        self.push(&value.to_le_bytes());
        self
    }

    /// Appends a byte-string field (length-prefixed).
    pub fn bytes(mut self, data: &[u8]) -> Self {
        self.push(&[0x02]);
        self.push(&(data.len() as u64).to_le_bytes());
        self.push(data);
        self
    }

    /// Appends a slice of 64-bit fields (e.g. the eight counters of a node).
    pub fn u64s(mut self, values: &[u64]) -> Self {
        self.push(&[0x03]);
        self.push(&(values.len() as u64).to_le_bytes());
        for v in values {
            self.push(&v.to_le_bytes());
        }
        self
    }

    /// Finalizes into a full 64-bit hash.
    pub fn hash64(&self, key: &MacKey) -> u64 {
        star_scope::span!("crypto/mac");
        key.hash_bytes(&self.buf[..self.len])
    }

    /// Finalizes into a 54-bit MAC.
    pub fn mac54(&self, key: &MacKey) -> Mac54 {
        Mac54::from_u64(self.hash64(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_rng::SimRng;

    #[test]
    fn mac_is_54_bits() {
        let key = MacKey::from_seed(0);
        for i in 0..64u64 {
            let m = MacInput::new().u64(i).mac54(&key);
            assert!(m.as_u64() <= MAC54_MASK);
        }
    }

    #[test]
    fn domain_separation_bytes_vs_u64() {
        let key = MacKey::from_seed(5);
        let a = MacInput::new().u64(0x0102_0304_0506_0708).mac54(&key);
        let b = MacInput::new().bytes(&[8, 7, 6, 5, 4, 3, 2, 1]).mac54(&key);
        assert_ne!(a, b);
    }

    #[test]
    fn key_seed_changes_mac() {
        let input = MacInput::new().u64(7);
        assert_ne!(
            input.mac54(&MacKey::from_seed(1)),
            input.mac54(&MacKey::from_seed(2))
        );
    }

    #[test]
    fn concatenation_is_not_ambiguous() {
        let key = MacKey::from_seed(9);
        // [1,2] ++ [3] vs [1] ++ [2,3] must differ thanks to length prefixes.
        let a = MacInput::new().u64s(&[1, 2]).u64s(&[3]).mac54(&key);
        let b = MacInput::new().u64s(&[1]).u64s(&[2, 3]).mac54(&key);
        assert_ne!(a, b);
    }

    /// Any single-bit flip in a u64 field changes the MAC (with
    /// overwhelming probability; deterministic here for the sampled
    /// cases).
    #[test]
    fn bit_flip_changes_mac() {
        let mut rng = SimRng::seed_from_u64(0x6d61_632d_666c_6970);
        let key = MacKey::from_seed(3);
        for _ in 0..256 {
            let value = rng.gen_u64();
            let bit = rng.gen_range(0..64) as u32;
            let a = MacInput::new().u64(value).mac54(&key);
            let b = MacInput::new().u64(value ^ (1 << bit)).mac54(&key);
            assert_ne!(a, b, "flip of bit {bit} in {value:#x} kept the MAC");
        }
    }

    #[test]
    fn mac_always_fits() {
        let mut rng = SimRng::seed_from_u64(0x6d61_632d_6669_7473);
        let key = MacKey::from_seed(11);
        for _ in 0..256 {
            let len = rng.gen_index(256);
            let data: Vec<u8> = (0..len).map(|_| rng.gen_u8()).collect();
            assert!(MacInput::new().bytes(&data).mac54(&key).as_u64() <= MAC54_MASK);
        }
    }
}
