//! SipHash-2-4 (Aumasson & Bernstein), the fast keyed hash used for the
//! 54-bit node MACs.
//!
//! SipHash is a PRF with a 128-bit key and 64-bit output, designed for
//! short inputs — exactly the shape of a 64-byte metadata node plus a few
//! address/counter words. The implementation follows the reference
//! description and is validated against the reference test vectors.

/// A SipHash-2-4 instance keyed with `(k0, k1)`.
///
/// ```
/// use star_crypto::SipHash24;
/// let h = SipHash24::new(1, 2);
/// assert_eq!(h.hash(b"abc"), SipHash24::new(1, 2).hash(b"abc"));
/// assert_ne!(h.hash(b"abc"), SipHash24::new(1, 3).hash(b"abc"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates a hasher from the two 64-bit key halves.
    pub fn new(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Hashes `data` to a 64-bit value.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736f_6d65_7073_6575,
            self.k1 ^ 0x646f_7261_6e64_6f6d,
            self.k0 ^ 0x6c79_6765_6e65_7261,
            self.k1 ^ 0x7465_6462_7974_6573,
        ];
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().unwrap());
            v[3] ^= m;
            sip_round(&mut v);
            sip_round(&mut v);
            v[0] ^= m;
        }
        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        last[7] = data.len() as u8;
        let m = u64::from_le_bytes(last);
        v[3] ^= m;
        sip_round(&mut v);
        sip_round(&mut v);
        v[0] ^= m;

        v[2] ^= 0xff;
        for _ in 0..4 {
            sip_round(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference implementation's key for its published vectors.
    fn reference_hasher() -> SipHash24 {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        SipHash24::new(k0, k1)
    }

    /// First few vectors from the SipHash reference implementation
    /// (`vectors_sip64` in the reference `siphash.c`): input is the byte
    /// string `00 01 02 ...` of increasing length.
    #[test]
    fn reference_vectors() {
        let expect: [u64; 8] = [
            u64::from_le_bytes([0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]),
            u64::from_le_bytes([0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74]),
            u64::from_le_bytes([0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d]),
            u64::from_le_bytes([0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85]),
            u64::from_le_bytes([0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf]),
            u64::from_le_bytes([0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18]),
            u64::from_le_bytes([0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb]),
            u64::from_le_bytes([0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab]),
        ];
        let h = reference_hasher();
        let input: Vec<u8> = (0..8).map(|i| i as u8).collect();
        for (len, want) in expect.iter().enumerate() {
            assert_eq!(h.hash(&input[..len]), *want, "length {len}");
        }
    }

    #[test]
    fn longer_inputs_cross_block_boundary() {
        let h = reference_hasher();
        let a: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let b: Vec<u8> = (0..64).map(|i| (i as u8) ^ 1).collect();
        assert_ne!(h.hash(&a), h.hash(&b));
    }

    #[test]
    fn empty_input_is_defined() {
        // From the reference vectors: hash of the empty string.
        let want = u64::from_le_bytes([0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72]);
        assert_eq!(reference_hasher().hash(&[]), want);
    }
}
