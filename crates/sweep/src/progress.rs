//! Opt-in stderr progress heartbeat for long sweeps.
//!
//! Disabled by default; CLIs turn it on with `--progress` via
//! [`set_progress`]. The heartbeat writes **only to stderr** — report
//! bytes on stdout are part of the determinism contract and must never
//! see a progress line.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Turns the stderr heartbeat on or off (process-wide).
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Whether the heartbeat is currently on.
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Per-sweep completion counter that prints `done/total` to stderr at
/// most once a second (plus once at the end), from whichever worker
/// happens to finish a job when a beat is due.
pub(crate) struct Meter {
    total: usize,
    done: AtomicUsize,
    start: Instant,
    /// Milliseconds since `start` at the last printed beat.
    last_beat_ms: AtomicU64,
}

impl Meter {
    const CADENCE_MS: u64 = 1_000;

    pub(crate) fn new(total: usize) -> Self {
        Self {
            total,
            done: AtomicUsize::new(0),
            start: Instant::now(),
            last_beat_ms: AtomicU64::new(0),
        }
    }

    /// Records one finished job and prints a beat if one is due.
    pub(crate) fn tick(&self) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !progress_enabled() {
            return;
        }
        let elapsed_ms = self.start.elapsed().as_millis() as u64;
        if done == self.total {
            // The final beat always prints, so short sweeps still get
            // one line.
            self.last_beat_ms.store(elapsed_ms, Ordering::Relaxed);
            self.print(done, elapsed_ms);
            return;
        }
        let last = self.last_beat_ms.load(Ordering::Relaxed);
        if elapsed_ms.saturating_sub(last) < Self::CADENCE_MS {
            return;
        }
        // One winner per beat: losers saw a concurrent update and skip.
        if self
            .last_beat_ms
            .compare_exchange(last, elapsed_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.print(done, elapsed_ms);
        }
    }

    fn print(&self, done: usize, elapsed_ms: u64) {
        eprintln!(
            "[sweep] {done}/{} cases, {:.1}s elapsed",
            self.total,
            elapsed_ms as f64 / 1000.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_without_progress_enabled() {
        let m = Meter::new(3);
        for _ in 0..3 {
            m.tick();
        }
        assert_eq!(m.done.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn toggle_round_trips() {
        set_progress(true);
        assert!(progress_enabled());
        set_progress(false);
        assert!(!progress_enabled());
    }
}
