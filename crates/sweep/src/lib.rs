//! Deterministic parallel sweep runner.
//!
//! Crash-schedule exploration and the bench figure grids are
//! embarrassingly parallel: every job — one crash case, one
//! (workload × scheme) cell — builds and drives its own independent
//! engine. This crate shards such jobs across a fixed-size pool of
//! `std::thread` workers pulling from a shared work queue, then merges
//! the results **in key order**, so the output of a sweep is a pure
//! function of its job list: byte-identical regardless of thread count,
//! scheduling, or which worker ran which job.
//!
//! # Determinism contract
//!
//! 1. Every job carries a key with a total order ([`SweepKey`], or any
//!    `Ord` type via [`run_keyed`]). Keys must be unique within a sweep.
//! 2. Jobs are sorted by key before dispatch and results are merged back
//!    in key order — a worker finishing early or late cannot reorder the
//!    output.
//! 3. Job functions must themselves be deterministic in their inputs
//!    (the engine, workloads and `star-rng` all are) and must not share
//!    mutable state; the `Fn(&K, &J) -> R + Sync` bound and the absence
//!    of mutable statics in the simulator enforce the latter.
//!
//! Under this contract `threads == 1` reproduces the serial sweep
//! exactly, and any other thread count reproduces `threads == 1`.
//!
//! ```
//! use star_sweep::run_keyed;
//!
//! let jobs: Vec<(u64, u64)> = (0..100).map(|i| (i, i)).collect();
//! let serial = run_keyed(1, jobs.clone(), |_, &j| j * j);
//! let parallel = run_keyed(4, jobs, |_, &j| j * j);
//! assert_eq!(serial, parallel);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod progress;

pub use progress::{progress_enabled, set_progress};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// The stable identity of one sweep job.
///
/// Field order is the sort order: `rank` — the job's position in the
/// serial enumeration — comes first so that a parallel merge reproduces
/// exactly the order a serial loop would have produced, whatever the
/// label spelling. The remaining fields make the key self-describing and
/// globally unique across composed sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SweepKey {
    /// Position of this job in the serial enumeration (primary order).
    pub rank: u64,
    /// Workload label (`array`, `ycsb`, ...).
    pub workload: &'static str,
    /// Scheme label (`wb`, `strict`, `anubis`, `star`).
    pub scheme: &'static str,
    /// Workload seed.
    pub seed: u64,
    /// Case id within the (workload, scheme, seed) cell — the persist
    /// point for a crash sweep, the cell ordinal for a figure grid.
    pub case: u64,
}

impl core::fmt::Display for SweepKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}/{}/seed{}/case{}",
            self.workload, self.scheme, self.seed, self.case
        )
    }
}

/// Runs every `(key, job)` through `f` on a pool of `threads` workers
/// and returns `(key, result)` pairs **in key order**.
///
/// `threads` is clamped to `1..=jobs.len()`; `threads <= 1` runs the
/// jobs inline on the caller's thread in the same order, so a serial
/// sweep and a 1-thread sweep are the same code path.
///
/// # Panics
///
/// Panics if two jobs share a key (the ordered merge would be
/// ambiguous), and propagates the first panic of any job after the pool
/// has drained or abandoned the remaining jobs.
pub fn run_keyed<K, J, R, F>(threads: usize, mut jobs: Vec<(K, J)>, f: F) -> Vec<(K, R)>
where
    K: Ord + Send + Sync,
    J: Send + Sync,
    R: Send,
    F: Fn(&K, &J) -> R + Sync,
{
    jobs.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(
        jobs.windows(2).all(|w| w[0].0 < w[1].0),
        "sweep keys must be unique"
    );
    let threads = threads.max(1).min(jobs.len().max(1));
    let meter = progress::Meter::new(jobs.len());
    if threads == 1 {
        return jobs
            .into_iter()
            .map(|(k, j)| {
                let r = {
                    star_scope::span!("sweep/job");
                    f(&k, &j)
                };
                meter.tick();
                (k, r)
            })
            .collect();
    }

    // Work queue: a shared cursor over the key-sorted job list. Each
    // completed result lands in its job's slot, so the merge below is
    // just a zip — no reordering can survive to the output.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some((k, j)) = jobs.get(i) else { break };
                let r = {
                    star_scope::span!("sweep/job");
                    f(k, j)
                };
                *slots[i].lock().expect("no poisoned result slot") = Some(r);
                meter.tick();
            });
        }
    });
    jobs.into_iter()
        .zip(slots)
        .map(|((k, _), slot)| {
            let r = slot
                .into_inner()
                .expect("no poisoned result slot")
                .expect("every job completed");
            (k, r)
        })
        .collect()
}

/// [`run_keyed`] for sweeps that only need the results: returns them in
/// key order, dropping the keys.
pub fn run_merged<K, J, R, F>(threads: usize, jobs: Vec<(K, J)>, f: F) -> Vec<R>
where
    K: Ord + Send + Sync,
    J: Send + Sync,
    R: Send,
    F: Fn(&K, &J) -> R + Sync,
{
    run_keyed(threads, jobs, f)
        .into_iter()
        .map(|(_, r)| r)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keyed(n: u64) -> Vec<(SweepKey, u64)> {
        (0..n)
            .map(|i| {
                (
                    SweepKey {
                        rank: i,
                        workload: "array",
                        scheme: "star",
                        seed: 42,
                        case: i,
                    },
                    i,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_any_thread_count() {
        let serial = run_keyed(1, keyed(97), |_, &j| j.wrapping_mul(0x9e37_79b9));
        for threads in [2, 3, 4, 8, 200] {
            let par = run_keyed(threads, keyed(97), |_, &j| j.wrapping_mul(0x9e37_79b9));
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn results_come_back_in_key_order_even_when_submitted_shuffled() {
        let mut jobs = keyed(50);
        jobs.reverse();
        jobs.swap(3, 40);
        let out = run_keyed(4, jobs, |k, _| k.case);
        let cases: Vec<u64> = out.iter().map(|(_, c)| *c).collect();
        assert_eq!(cases, (0..50).collect::<Vec<u64>>());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn rank_dominates_label_order() {
        // zebra ranks before apple: serial enumeration order wins over
        // alphabetical labels.
        let a = SweepKey {
            rank: 0,
            workload: "zebra",
            scheme: "star",
            seed: 0,
            case: 0,
        };
        let b = SweepKey {
            rank: 1,
            workload: "apple",
            scheme: "star",
            seed: 0,
            case: 0,
        };
        assert!(a < b);
    }

    #[test]
    fn empty_and_single_job_sweeps_work() {
        let none: Vec<(u64, u64)> = Vec::new();
        assert!(run_keyed(4, none, |_, &j| j).is_empty());
        assert_eq!(run_merged(4, vec![(7u64, 3u64)], |_, &j| j + 1), vec![4]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_keys_are_rejected() {
        run_keyed(2, vec![(1u64, 0u64), (1u64, 1u64)], |_, &j| j);
    }

    #[test]
    fn oversubscribed_pool_is_clamped() {
        // More threads than jobs must not hang or skip work.
        let out = run_merged(64, keyed(3), |_, &j| j);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
