//! The simulated persistent heap.
//!
//! Workload data structures allocate 64-byte lines from a bump allocator
//! over the user-data region and talk to the memory system through
//! [`Pmem`], which wraps a [`TraceSink`] with store/load/persist helpers
//! and stamps every store with a fresh content version (the simulation's
//! stand-in for actual bytes).

use star_mem::{MemEvent, TraceSink};
use star_rng::SimRng;

/// Persistent-heap access helper.
///
/// Tracks the bump allocator and the global store-version counter.
#[derive(Debug, Clone)]
pub struct Pmem {
    next_line: u64,
    limit: u64,
    version: u64,
}

impl Pmem {
    /// A heap over data lines `[base, base + capacity_lines)`.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn new(base: u64, capacity_lines: u64) -> Self {
        assert!(capacity_lines > 0, "heap must have capacity");
        Self {
            next_line: base,
            limit: base + capacity_lines,
            version: 0,
        }
    }

    /// Allocates `n` consecutive lines, returning the first line index.
    ///
    /// # Panics
    ///
    /// Panics when the heap is exhausted — size workloads to their heap.
    pub fn alloc(&mut self, n: u64) -> u64 {
        let first = self.next_line;
        assert!(
            first + n <= self.limit,
            "persistent heap exhausted ({} + {n} > {})",
            first,
            self.limit
        );
        self.next_line += n;
        first
    }

    /// Lines allocated so far.
    pub fn allocated_lines(&self) -> u64 {
        self.next_line
    }

    /// Emits a load of `line`.
    pub fn load(&self, sink: &mut dyn TraceSink, line: u64) {
        sink.on_event(MemEvent::Read { line });
    }

    /// Emits a store to `line` with a fresh content version.
    pub fn store(&mut self, sink: &mut dyn TraceSink, line: u64) {
        self.version += 1;
        sink.on_event(MemEvent::Write {
            line,
            version: self.version,
        });
    }

    /// Emits a `clwb` of `line`.
    pub fn persist(&self, sink: &mut dyn TraceSink, line: u64) {
        sink.on_event(MemEvent::Clwb { line });
    }

    /// Emits an `sfence`.
    pub fn fence(&self, sink: &mut dyn TraceSink) {
        sink.on_event(MemEvent::Fence);
    }

    /// Emits `count` instructions of compute.
    pub fn work(&self, sink: &mut dyn TraceSink, count: u64) {
        sink.on_event(MemEvent::Work { count });
    }

    /// Store + `clwb` of one line (the common persist idiom).
    pub fn store_persist(&mut self, sink: &mut dyn TraceSink, line: u64) {
        self.store(sink, line);
        self.persist(sink, line);
    }
}

/// A volatile (non-persisted) working set.
///
/// The paper evaluates on a machine whose *entire* main memory is PCM, so
/// the applications' ordinary heaps, stacks and lookup structures also
/// generate NVM traffic — mostly reads, plus cache-eviction write-backs
/// that are never `clwb`ed. Each workload owns one of these and churns it
/// every operation; without it the trace would be persist-only and far
/// more write-heavy than anything the paper measured.
#[derive(Debug, Clone)]
pub struct VolatileSet {
    base: u64,
    lines: u64,
}

impl VolatileSet {
    /// Carves `lines` lines out of `pmem` for the volatile set.
    pub fn new(pmem: &mut Pmem, lines: u64) -> Self {
        Self {
            base: pmem.alloc(lines),
            lines,
        }
    }

    /// Issues `reads` random loads into the set; each has a 5% chance of
    /// also storing (without persisting — eviction write-backs only).
    pub fn churn(&self, pmem: &mut Pmem, sink: &mut dyn TraceSink, rng: &mut SimRng, reads: usize) {
        for _ in 0..reads {
            let line = self.base + rng.gen_range(0..self.lines);
            pmem.load(sink, line);
            if rng.gen_bool(0.05) {
                pmem.store(sink, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::VecSink;

    #[test]
    fn alloc_is_sequential_and_bounded() {
        let mut h = Pmem::new(100, 10);
        assert_eq!(h.alloc(3), 100);
        assert_eq!(h.alloc(7), 103);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_panics() {
        let mut h = Pmem::new(0, 2);
        h.alloc(3);
    }

    #[test]
    fn store_versions_are_monotonic() {
        let mut h = Pmem::new(0, 4);
        let mut sink = VecSink::new();
        h.store(&mut sink, 0);
        h.store(&mut sink, 1);
        let versions: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                MemEvent::Write { version, .. } => Some(*version),
                _ => None,
            })
            .collect();
        assert_eq!(versions, vec![1, 2]);
    }

    #[test]
    fn store_persist_emits_both() {
        let mut h = Pmem::new(0, 4);
        let mut sink = VecSink::new();
        h.store_persist(&mut sink, 2);
        assert_eq!(sink.write_count(), 1);
        assert_eq!(sink.clwb_count(), 1);
    }
}
