//! `ycsb`: a WHISPER-style YCSB key-value kernel.
//!
//! A persistent hash-indexed KV store driven by a Zipfian key
//! distribution (theta 0.99, the YCSB default) with a 50/50 read/update
//! mix (workload A). Updates write the value line and append to a redo
//! log, persisting both; reads probe the index and load the value. The
//! Zipfian skew concentrates writes on hot keys — high temporal locality,
//! the favourable end of the spectrum for STAR's bitmap lines.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::zipf::Zipfian;
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;

/// Number of keys in the store.
const KEYS: u64 = 1 << 16;
/// Lines reserved for the redo log.
const LOG_LINES: u64 = 1 << 18;

/// The YCSB-A-like workload.
#[derive(Debug, Clone)]
pub struct YcsbWorkload {
    pmem: Pmem,
    index_base: u64,
    value_base: u64,
    log_base: u64,
    log_head: u64,
    volatile: VolatileSet,
    zipf: Zipfian,
    rng: SimRng,
}

impl YcsbWorkload {
    /// Builds the store (index, values, log) in the workload heap.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let index_base = pmem.alloc(KEYS / 8); // 8 index entries per line
        let value_base = pmem.alloc(KEYS);
        let log_base = pmem.alloc(LOG_LINES);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            index_base,
            value_base,
            log_base,
            log_head: 0,
            volatile,
            zipf: Zipfian::new(KEYS, 0.99),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    fn read_op(&mut self, sink: &mut dyn TraceSink, key: u64) {
        self.pmem.work(sink, 600);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 3);
        self.pmem.load(sink, self.index_base + key / 8);
        self.pmem.load(sink, self.value_base + key);
    }

    fn update_op(&mut self, sink: &mut dyn TraceSink, key: u64) {
        self.pmem.work(sink, 800);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 3);
        self.pmem.load(sink, self.index_base + key / 8);
        // Redo-log the update, then write the value in place.
        let log_line = self.log_base + self.log_head % LOG_LINES;
        self.log_head += 1;
        self.pmem.store_persist(sink, log_line);
        self.pmem.fence(sink);
        self.pmem.store_persist(sink, self.value_base + key);
        self.pmem.fence(sink);
    }
}

impl Workload for YcsbWorkload {
    fn name(&self) -> &'static str {
        "ycsb"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        let key = self.zipf.sample(&mut self.rng);
        // Scramble so hot keys are not physically adjacent (YCSB
        // hashes keys), while staying deterministic.
        let key = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) % KEYS;
        if self.rng.gen_bool(0.5) {
            self.read_op(sink, key);
        } else {
            self.update_op(sink, key);
        }
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::{MemEvent, VecSink};

    #[test]
    fn mixes_reads_and_updates() {
        let mut wl = YcsbWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(400, &mut sink);
        assert!(sink.read_count() > 100);
        assert!(sink.write_count() > 100);
        assert!(
            sink.clwb_count() <= sink.write_count(),
            "volatile stores are never persisted"
        );
        assert!(sink.clwb_count() > 100, "updates persist");
    }

    #[test]
    fn hot_keys_repeat() {
        let mut wl = YcsbWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(1_000, &mut sink);
        let mut counts = std::collections::HashMap::new();
        for e in &sink.events {
            if let MemEvent::Write { line, .. } = e {
                if *line >= wl.value_base && *line < wl.value_base + KEYS {
                    *counts.entry(*line).or_insert(0u32) += 1;
                }
            }
        }
        let max = counts.values().copied().max().unwrap_or(0);
        assert!(max >= 5, "zipfian updates revisit hot keys (max {max})");
    }
}
