//! `tpcc`: a WHISPER-style TPC-C kernel.
//!
//! Models the persistent-memory behaviour of the WHISPER `tpcc` trace:
//! transactions update a handful of warehouse/district/customer records
//! in place, append order lines to per-district order tables, and write a
//! redo-log record, persisting at each durability point. The mix is 90%
//! NEW-ORDER (log append + ~10 order-line writes + district counter
//! update) and 10% PAYMENT (log append + 3 record updates), giving a
//! write stream that blends a sequential log with scattered record
//! updates — mid-pack locality, as the paper's macro results show.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;

/// Districts (order tables) in the modeled warehouse set.
const DISTRICTS: u64 = 16;
/// Customer record lines.
const CUSTOMERS: u64 = 1 << 14;
/// Lines reserved for the redo log.
const LOG_LINES: u64 = 1 << 17;
/// Lines per district order table.
const ORDERS_PER_DISTRICT: u64 = 1 << 13;

/// The TPC-C-like workload.
#[derive(Debug, Clone)]
pub struct TpccWorkload {
    pmem: Pmem,
    log_base: u64,
    log_head: u64,
    district_meta: u64,
    customer_base: u64,
    order_base: u64,
    order_heads: Vec<u64>,
    volatile: VolatileSet,
    rng: SimRng,
}

impl TpccWorkload {
    /// Lays the tables out in the workload heap.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let log_base = pmem.alloc(LOG_LINES);
        let district_meta = pmem.alloc(DISTRICTS);
        let customer_base = pmem.alloc(CUSTOMERS);
        let order_base = pmem.alloc(DISTRICTS * ORDERS_PER_DISTRICT);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            log_base,
            log_head: 0,
            district_meta,
            customer_base,
            order_base,
            order_heads: vec![0; DISTRICTS as usize],
            volatile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    fn log_append(&mut self, sink: &mut dyn TraceSink, lines: u64) {
        for _ in 0..lines {
            let line = self.log_base + self.log_head % LOG_LINES;
            self.log_head += 1;
            self.pmem.store_persist(sink, line);
        }
        self.pmem.fence(sink);
    }

    fn new_order(&mut self, sink: &mut dyn TraceSink) {
        let d = self.rng.gen_range(0..DISTRICTS);
        let items = self.rng.gen_range_inclusive(5..=15);
        self.pmem.work(sink, 2500);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 14);
        // Read the district record and the customer.
        self.pmem.load(sink, self.district_meta + d);
        let c = self.rng.gen_range(0..CUSTOMERS);
        self.pmem.load(sink, self.customer_base + c);
        // Redo-log the transaction (1 line per ~4 items).
        self.log_append(sink, 1 + items / 4);
        // Append order lines sequentially in the district's table.
        let head = &mut self.order_heads[d as usize];
        for _ in 0..items {
            let line = self.order_base + d * ORDERS_PER_DISTRICT + (*head % ORDERS_PER_DISTRICT);
            *head += 1;
            self.pmem.store_persist(sink, line);
        }
        self.pmem.fence(sink);
        // Bump the district's next-order counter.
        self.pmem.store_persist(sink, self.district_meta + d);
        self.pmem.fence(sink);
    }

    fn payment(&mut self, sink: &mut dyn TraceSink) {
        let d = self.rng.gen_range(0..DISTRICTS);
        let c = self.rng.gen_range(0..CUSTOMERS);
        self.pmem.work(sink, 1500);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 6);
        self.log_append(sink, 1);
        self.pmem.load(sink, self.customer_base + c);
        self.pmem.store_persist(sink, self.customer_base + c);
        self.pmem.store_persist(sink, self.district_meta + d);
        self.pmem.fence(sink);
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        if self.rng.gen_bool(0.9) {
            self.new_order(sink);
        } else {
            self.payment(sink);
        }
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::{MemEvent, VecSink};

    #[test]
    fn transactions_persist_and_fence() {
        let mut wl = TpccWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(50, &mut sink);
        assert!(sink.clwb_count() > 50 * 5, "new-order writes many lines");
        let fences = sink
            .events
            .iter()
            .filter(|e| matches!(e, MemEvent::Fence))
            .count();
        assert!(fences >= 50 * 2, "durability points fence");
    }

    #[test]
    fn log_is_sequential() {
        let mut wl = TpccWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(100, &mut sink);
        let log_writes: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                MemEvent::Write { line, .. }
                    if *line < wl.log_base + LOG_LINES && *line >= wl.log_base =>
                {
                    Some(*line)
                }
                _ => None,
            })
            .collect();
        assert!(log_writes
            .windows(2)
            .all(|w| w[1] == w[0] + 1 || w[1] == wl.log_base));
    }
}
