//! A Zipfian index generator (Gray et al., "Quickly generating
//! billion-record synthetic databases"), as used by YCSB.

use star_rng::SimRng;

/// Draws indices in `0..n` with Zipfian skew `theta` (YCSB default 0.99).
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need a non-empty range");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        Self {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; workloads use modest n so this stays cheap.
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Number of distinct values.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws the next Zipf-distributed index in `0..n` (0 is hottest).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u: f64 = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(self.n - 1)
    }

    /// The `zeta(2, theta)` constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn samples_stay_in_range() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1000);
        }
    }

    #[test]
    fn distribution_is_skewed() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = SimRng::seed_from_u64(2);
        let mut hot = 0;
        const DRAWS: usize = 20_000;
        for _ in 0..DRAWS {
            if z.sample(&mut rng) < 10 {
                hot += 1;
            }
        }
        // Top-1% of keys should draw far more than 1% of samples.
        assert!(
            hot as f64 / DRAWS as f64 > 0.3,
            "zipfian skew too weak: {hot}/{DRAWS}"
        );
    }

    #[test]
    fn tiny_ranges_work() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_range_rejected() {
        Zipfian::new(0, 0.9);
    }
}
