//! Multi-threaded workload composition.
//!
//! The paper runs every benchmark with 8 threads. The model is
//! single-stream, so threading is represented the way a trace-driven
//! memory study sees it: `t` independent instances of the workload, each
//! in its own heap partition, with their reference streams interleaved
//! round-robin in small bursts. That reproduces the property that matters
//! to the memory system — concurrent working sets from multiple heaps
//! hitting the shared metadata cache and bitmap lines.

use crate::micro::HEAP_LINES;
use crate::{Workload, WorkloadKind};
use star_mem::{MemEvent, TraceSink, VecSink};

/// A sink adapter that relocates line addresses by a fixed offset,
/// placing each thread's heap in its own partition.
struct OffsetSink<'a> {
    base: u64,
    inner: &'a mut dyn TraceSink,
}

impl TraceSink for OffsetSink<'_> {
    fn on_event(&mut self, event: MemEvent) {
        let shifted = match event {
            MemEvent::Read { line } => MemEvent::Read {
                line: line + self.base,
            },
            MemEvent::Write { line, version } => MemEvent::Write {
                line: line + self.base,
                version,
            },
            MemEvent::Clwb { line } => MemEvent::Clwb {
                line: line + self.base,
            },
            other => other,
        };
        self.inner.on_event(shifted);
    }
}

/// `threads` interleaved instances of one workload.
///
/// ```
/// use star_workloads::{MultiThreaded, Workload, WorkloadKind};
/// use star_mem::VecSink;
/// let mut wl = MultiThreaded::new(WorkloadKind::Queue, 8, 42);
/// let mut sink = VecSink::new();
/// wl.run(80, &mut sink); // 10 operations per thread
/// assert!(sink.write_count() > 0);
/// ```
pub struct MultiThreaded {
    kind: WorkloadKind,
    instances: Vec<Box<dyn Workload>>,
    /// Operations executed per burst before rotating to the next thread.
    burst: usize,
    /// Next thread to take a single [`Workload::step`] (step-wise
    /// round-robin cursor; `run` uses its own burst schedule instead).
    cursor: usize,
}

impl core::fmt::Debug for MultiThreaded {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MultiThreaded")
            .field("kind", &self.kind)
            .field("threads", &self.instances.len())
            .field("burst", &self.burst)
            .finish()
    }
}

impl MultiThreaded {
    /// Creates `threads` instances of `kind`, seeded distinctly from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(kind: WorkloadKind, threads: usize, seed: u64) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self {
            kind,
            instances: (0..threads)
                .map(|t| kind.instantiate(seed.wrapping_add(t as u64 * 0x9e37)))
                .collect(),
            burst: 4,
            cursor: 0,
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.instances.len()
    }

    /// Heap partition base line for thread `t`.
    pub fn partition_base(t: usize) -> u64 {
        t as u64 * HEAP_LINES
    }
}

impl Workload for MultiThreaded {
    fn name(&self) -> &'static str {
        self.kind.label()
    }

    /// One operation from the next thread in rotation.
    ///
    /// Note the divergence from [`run`](Workload::run), which keeps its
    /// burst-of-4 schedule *dependent on the total op count* (each
    /// thread runs `ops/threads` operations): `MultiThreaded` is a bench
    /// composition, not a crash-exploration workload, so `run` is NOT a
    /// loop of `step` here.
    fn step(&mut self, sink: &mut dyn TraceSink) {
        let t = self.cursor;
        self.cursor = (self.cursor + 1) % self.instances.len();
        let mut buffer = VecSink::new();
        self.instances[t].step(&mut buffer);
        let mut shifted = OffsetSink {
            base: Self::partition_base(t),
            inner: sink,
        };
        shifted.on_events(&buffer.events);
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(MultiThreaded {
            kind: self.kind,
            instances: self.instances.iter().map(|w| w.fork_box()).collect(),
            burst: self.burst,
            cursor: self.cursor,
        })
    }

    fn run(&mut self, ops: usize, sink: &mut dyn TraceSink) {
        // Round-robin in bursts until every thread has run `ops/threads`
        // operations (±1 burst).
        let threads = self.instances.len();
        let per_thread = ops.div_ceil(threads);
        let mut done = vec![0usize; threads];
        let mut buffer = VecSink::new();
        loop {
            let mut progressed = false;
            for (t, wl) in self.instances.iter_mut().enumerate() {
                if done[t] >= per_thread {
                    continue;
                }
                let n = self.burst.min(per_thread - done[t]);
                buffer.events.clear();
                wl.run(n, &mut buffer);
                let mut shifted = OffsetSink {
                    base: Self::partition_base(t),
                    inner: sink,
                };
                shifted.on_events(&buffer.events);
                done[t] += n;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_do_not_overlap() {
        let mut wl = MultiThreaded::new(WorkloadKind::Array, 4, 9);
        let mut sink = VecSink::new();
        wl.run(200, &mut sink);
        let mut seen_partitions = std::collections::HashSet::new();
        for e in &sink.events {
            if let MemEvent::Write { line, .. } = e {
                seen_partitions.insert(line / HEAP_LINES);
            }
        }
        assert_eq!(
            seen_partitions.len(),
            4,
            "every thread writes its own partition"
        );
    }

    #[test]
    fn interleaving_rotates_threads() {
        let mut wl = MultiThreaded::new(WorkloadKind::Queue, 2, 9);
        let mut sink = VecSink::new();
        wl.run(40, &mut sink);
        // Both partitions appear in the first half of the trace.
        let half = &sink.events[..sink.events.len() / 2];
        let parts: std::collections::HashSet<u64> = half
            .iter()
            .filter_map(|e| match e {
                MemEvent::Write { line, .. } => Some(line / HEAP_LINES),
                _ => None,
            })
            .collect();
        assert_eq!(parts.len(), 2, "bursts interleave rather than serialize");
    }

    #[test]
    fn total_ops_are_split() {
        let mut a = MultiThreaded::new(WorkloadKind::Array, 8, 3);
        let mut sink_a = VecSink::new();
        a.run(80, &mut sink_a);
        // 8 threads × 10 array ops → 80 persists.
        assert_eq!(sink_a.clwb_count(), 80);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        MultiThreaded::new(WorkloadKind::Array, 0, 0);
    }
}
