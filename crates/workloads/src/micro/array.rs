//! `array`: random in-place updates of a persistent array.
//!
//! The classic SWAP/array kernel: pick a random slot, read it, write a
//! new value, `clwb` + `sfence`. Uniformly random addressing gives the
//! *worst* spatial locality of the micro set — the paper observes STAR's
//! bitmap lines thrash most on array and hash.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;

/// Configuration and state of the array workload.
#[derive(Debug, Clone)]
pub struct ArrayWorkload {
    pmem: Pmem,
    base: u64,
    lines: u64,
    volatile: VolatileSet,
    rng: SimRng,
}

impl ArrayWorkload {
    /// The default array: a 4 MB hot set — the size the paper's array
    /// kernel implies (its STAR traffic and Table II hit ratios bound the
    /// footprint to a few MB).
    pub fn new(seed: u64) -> Self {
        Self::with_bytes(seed, 4 << 20)
    }

    /// An array over a hot set of `bytes` bytes (used by the Fig. 14b
    /// cache-size sweep, which needs enough distinct counter blocks to
    /// fill a 4 MB metadata cache).
    ///
    /// # Panics
    ///
    /// Panics if the hot set plus the volatile set exceed the heap.
    pub fn with_bytes(seed: u64, bytes: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let lines = bytes / 64;
        let base = pmem.alloc(lines);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            base,
            lines,
            volatile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Number of array lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }
}

impl Workload for ArrayWorkload {
    fn name(&self) -> &'static str {
        "array"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        let idx = self.rng.gen_range(0..self.lines);
        let line = self.base + idx;
        self.pmem.work(sink, 800);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 8);
        self.pmem.load(sink, line);
        self.pmem.store_persist(sink, line);
        self.pmem.fence(sink);
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::VecSink;

    #[test]
    fn one_persist_per_op() {
        let mut wl = ArrayWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(100, &mut sink);
        assert_eq!(sink.clwb_count(), 100, "one persist per op");
        assert!(
            sink.write_count() >= 100,
            "persisted stores plus volatile churn"
        );
    }

    #[test]
    fn updates_are_spread_out() {
        let mut wl = ArrayWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(200, &mut sink);
        let distinct: std::collections::HashSet<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                star_mem::MemEvent::Write { line, .. } => Some(*line),
                _ => None,
            })
            .collect();
        assert!(distinct.len() > 150, "random updates rarely collide");
    }
}
