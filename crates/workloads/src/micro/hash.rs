//! `hash`: a persistent open-chaining hash table.
//!
//! Keys hash uniformly over a large bucket array; each insert/update
//! reads the bucket line, writes it (or an allocated overflow line) and
//! persists. Like `array`, addressing is effectively random — the
//! paper's worst case for STAR's bitmap locality — but with extra reads
//! along collision chains.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;
use std::collections::HashMap;

/// Entries per 64-byte bucket line before it overflows.
const SLOTS_PER_BUCKET: u32 = 7;

/// A persistent hash-table workload (inserts and updates of random keys).
#[derive(Debug, Clone)]
pub struct HashWorkload {
    pmem: Pmem,
    bucket_base: u64,
    buckets: u64,
    /// Model state: entries per bucket and overflow chain lines.
    fill: HashMap<u64, u32>,
    chains: HashMap<u64, Vec<u64>>,
    volatile: VolatileSet,
    rng: SimRng,
}

impl HashWorkload {
    /// A table whose bucket array spans half the heap; the rest feeds
    /// overflow-chain allocation.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        // 5 MB bucket array: slightly larger / less local than `array`,
        // matching the paper's ordering (hash is its worst case).
        let buckets = (5 << 20) / 64;
        let bucket_base = pmem.alloc(buckets);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            bucket_base,
            buckets,
            fill: HashMap::new(),
            chains: HashMap::new(),
            volatile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Number of bucket lines.
    pub fn buckets(&self) -> u64 {
        self.buckets
    }
}

impl Workload for HashWorkload {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        let key: u64 = self.rng.gen_u64();
        let b = key % self.buckets;
        let bucket_line = self.bucket_base + b;
        self.pmem.work(sink, 1000);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 8);
        // Probe: read the bucket and walk any overflow chain.
        self.pmem.load(sink, bucket_line);
        if let Some(chain) = self.chains.get(&b) {
            for &line in chain {
                self.pmem.load(sink, line);
            }
        }
        let count = self.fill.entry(b).or_insert(0);
        if *count < SLOTS_PER_BUCKET {
            *count += 1;
            self.pmem.store_persist(sink, bucket_line);
        } else {
            // Overflow: allocate (or reuse the newest) chain line and
            // link it from the bucket header.
            let needs_new = self
                .chains
                .get(&b)
                .is_none_or(|c| c.len() as u32 * SLOTS_PER_BUCKET < *count - SLOTS_PER_BUCKET + 1);
            let line = if needs_new {
                let line = self.pmem.alloc(1);
                self.chains.entry(b).or_default().push(line);
                line
            } else {
                *self.chains[&b].last().expect("chain exists")
            };
            *self.fill.get_mut(&b).expect("present") += 1;
            self.pmem.store_persist(sink, line);
            self.pmem.fence(sink);
            self.pmem.store_persist(sink, bucket_line);
        }
        self.pmem.fence(sink);
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::VecSink;

    #[test]
    fn every_op_persists() {
        let mut wl = HashWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(200, &mut sink);
        assert!(sink.clwb_count() >= 200);
        assert!(sink.read_count() >= 200, "probes read the bucket");
    }

    #[test]
    fn buckets_are_uniformly_scattered() {
        let mut wl = HashWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(300, &mut sink);
        let regions: std::collections::HashSet<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                star_mem::MemEvent::Write { line, .. } => Some(line / 512),
                _ => None,
            })
            .collect();
        assert!(
            regions.len() > 100,
            "writes span many 32KB regions: {}",
            regions.len()
        );
    }
}
