//! The five persistent micro-benchmarks (paper §IV-A).

pub mod array;
pub mod btree;
pub mod hash;
pub mod queue;
pub mod rbtree;

pub use array::ArrayWorkload;
pub use btree::BtreeWorkload;
pub use hash::HashWorkload;
pub use queue::QueueWorkload;
pub use rbtree::RbtreeWorkload;

/// Default heap base line for workloads (line 0 of the data region).
pub const HEAP_BASE: u64 = 0;

/// Default per-workload heap budget: 64 MB of data lines. Large enough to
/// pressure the 512 KB metadata cache, small enough to run quickly.
pub const HEAP_LINES: u64 = (64 << 20) / 64;

#[cfg(test)]
mod tests {
    use crate::WorkloadKind;
    use star_mem::{MemEvent, VecSink};

    /// Every micro-benchmark must produce a persist-ordered stream:
    /// writes, clwbs and fences, and must stay within its heap.
    #[test]
    fn all_micros_emit_persist_streams() {
        for kind in WorkloadKind::MICROS {
            let mut wl = kind.instantiate(11);
            let mut sink = VecSink::new();
            wl.run(300, &mut sink);
            assert!(sink.write_count() > 0, "{kind:?} writes");
            assert!(sink.clwb_count() > 0, "{kind:?} persists");
            assert!(
                sink.events.iter().any(|e| matches!(e, MemEvent::Fence)),
                "{kind:?} fences"
            );
            for e in &sink.events {
                if let MemEvent::Write { line, .. } | MemEvent::Read { line } = e {
                    assert!(
                        *line < super::HEAP_BASE + super::HEAP_LINES,
                        "{kind:?} in heap"
                    );
                }
            }
        }
    }

    /// Identical seeds give identical traces (reproducible figures).
    #[test]
    fn traces_are_deterministic() {
        for kind in WorkloadKind::MICROS {
            let mut a = kind.instantiate(5);
            let mut b = kind.instantiate(5);
            let (mut sa, mut sb) = (VecSink::new(), VecSink::new());
            a.run(200, &mut sa);
            b.run(200, &mut sb);
            assert_eq!(sa.events, sb.events, "{kind:?} determinism");
        }
    }

    /// The queue is the high-locality extreme: its persists land on
    /// consecutive lines far more often than the array's random writes.
    #[test]
    fn queue_is_more_local_than_array() {
        let spread = |kind: WorkloadKind| {
            let mut wl = kind.instantiate(3);
            let mut sink = VecSink::new();
            wl.run(500, &mut sink);
            let mut lines: Vec<u64> = sink
                .events
                .iter()
                .filter_map(|e| match e {
                    MemEvent::Write { line, .. } => Some(*line / 512),
                    _ => None,
                })
                .collect();
            lines.sort_unstable();
            lines.dedup();
            lines.len()
        };
        let queue = spread(WorkloadKind::Queue);
        let array = spread(WorkloadKind::Array);
        assert!(
            queue < array,
            "queue should touch fewer 32KB bitmap regions: {queue} vs {array}"
        );
    }
}
