//! `rbtree`: a persistent red-black tree with random-key inserts.
//!
//! One 64-byte line per node. Inserts walk from the root (loads) and run
//! the classic CLRS insert-fixup; every node whose color or pointers
//! change is persisted, with a fence closing each insert. Rotations near
//! the root keep a hot, high-reuse region while leaf allocations spread —
//! a distinct locality mix from the other micros.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;
use std::collections::HashSet;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    color: Color,
    parent: usize,
    left: usize,
    right: usize,
    line: u64,
}

/// The persistent red-black-tree workload.
#[derive(Debug, Clone)]
pub struct RbtreeWorkload {
    pmem: Pmem,
    nodes: Vec<Node>,
    root: usize,
    volatile: VolatileSet,
    rng: SimRng,
    /// Nodes modified by the current insert, persisted at its end.
    touched: HashSet<usize>,
}

impl RbtreeWorkload {
    /// An empty tree over the workload heap.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            nodes: Vec::new(),
            root: NIL,
            volatile,
            rng: SimRng::seed_from_u64(seed),
            touched: HashSet::new(),
        }
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn touch(&mut self, n: usize) {
        if n != NIL {
            self.touched.insert(n);
        }
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right;
        self.nodes[x].right = self.nodes[y].left;
        if self.nodes[y].left != NIL {
            let l = self.nodes[y].left;
            self.nodes[l].parent = x;
            self.touch(l);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let p = self.nodes[x].parent;
        if p == NIL {
            self.root = y;
        } else if self.nodes[p].left == x {
            self.nodes[p].left = y;
            self.touch(p);
        } else {
            self.nodes[p].right = y;
            self.touch(p);
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
        self.touch(x);
        self.touch(y);
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left;
        self.nodes[x].left = self.nodes[y].right;
        if self.nodes[y].right != NIL {
            let r = self.nodes[y].right;
            self.nodes[r].parent = x;
            self.touch(r);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let p = self.nodes[x].parent;
        if p == NIL {
            self.root = y;
        } else if self.nodes[p].right == x {
            self.nodes[p].right = y;
            self.touch(p);
        } else {
            self.nodes[p].left = y;
            self.touch(p);
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
        self.touch(x);
        self.touch(y);
    }

    fn insert(&mut self, sink: &mut dyn TraceSink, key: u64) {
        self.touched.clear();
        // BST descent with loads.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            self.pmem.load(sink, self.nodes[cur].line);
            parent = cur;
            cur = if key < self.nodes[cur].key {
                self.nodes[cur].left
            } else {
                self.nodes[cur].right
            };
        }
        let line = self.pmem.alloc(1);
        let z = self.nodes.len();
        self.nodes.push(Node {
            key,
            color: Color::Red,
            parent,
            left: NIL,
            right: NIL,
            line,
        });
        self.touch(z);
        if parent == NIL {
            self.root = z;
        } else if key < self.nodes[parent].key {
            self.nodes[parent].left = z;
            self.touch(parent);
        } else {
            self.nodes[parent].right = z;
            self.touch(parent);
        }
        self.fixup(z);
        // Persist every modified node, one fence for the insert.
        let mut lines: Vec<u64> = self.touched.iter().map(|&n| self.nodes[n].line).collect();
        lines.sort_unstable();
        for l in lines {
            self.pmem.store_persist(sink, l);
        }
        self.pmem.fence(sink);
    }

    fn fixup(&mut self, mut z: usize) {
        while self.nodes[z].parent != NIL && self.nodes[self.nodes[z].parent].color == Color::Red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            if g == NIL {
                break;
            }
            if self.nodes[g].left == p {
                let u = self.nodes[g].right;
                if u != NIL && self.nodes[u].color == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.touch(p);
                    self.touch(u);
                    self.touch(g);
                    z = g;
                } else {
                    if self.nodes[p].right == z {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.touch(p);
                    self.touch(g);
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].left;
                if u != NIL && self.nodes[u].color == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.touch(p);
                    self.touch(u);
                    self.touch(g);
                    z = g;
                } else {
                    if self.nodes[p].left == z {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.touch(p);
                    self.touch(g);
                    self.rotate_left(g);
                }
            }
        }
        let r = self.root;
        if self.nodes[r].color != Color::Black {
            self.nodes[r].color = Color::Black;
            self.touch(r);
        }
    }

    /// Validates the red-black invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.root == NIL {
            return Ok(());
        }
        if self.nodes[self.root].color != Color::Black {
            return Err("root must be black".into());
        }
        fn walk(t: &RbtreeWorkload, n: usize) -> Result<usize, String> {
            if n == NIL {
                return Ok(1);
            }
            let node = &t.nodes[n];
            if node.color == Color::Red {
                for c in [node.left, node.right] {
                    if c != NIL && t.nodes[c].color == Color::Red {
                        return Err(format!("red-red violation at key {}", node.key));
                    }
                }
            }
            if node.left != NIL && t.nodes[node.left].key > node.key {
                return Err("BST order violated (left)".into());
            }
            if node.right != NIL && t.nodes[node.right].key < node.key {
                return Err("BST order violated (right)".into());
            }
            let lb = walk(t, node.left)?;
            let rb = walk(t, node.right)?;
            if lb != rb {
                return Err(format!("black-height mismatch at key {}", node.key));
            }
            Ok(lb + usize::from(node.color == Color::Black))
        }
        walk(self, self.root).map(|_| ())
    }
}

impl Workload for RbtreeWorkload {
    fn name(&self) -> &'static str {
        "rbtree"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        let key: u64 = self.rng.gen_u64();
        self.pmem.work(sink, 800);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 4);
        self.insert(sink, key);
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::VecSink;

    #[test]
    fn invariants_hold_after_many_inserts() {
        let mut wl = RbtreeWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(2_000, &mut sink);
        assert_eq!(wl.len(), 2_000);
        wl.check_invariants().expect("red-black invariants");
    }

    #[test]
    fn sequential_keys_also_balance() {
        let mut wl = RbtreeWorkload::new(0);
        let mut sink = VecSink::new();
        for key in 0..500 {
            wl.insert(&mut sink, key);
        }
        wl.check_invariants().expect("balanced under sorted input");
    }

    #[test]
    fn every_insert_persists_and_fences() {
        let mut wl = RbtreeWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(100, &mut sink);
        assert!(sink.clwb_count() >= 100);
        let fences = sink
            .events
            .iter()
            .filter(|e| matches!(e, star_mem::MemEvent::Fence))
            .count();
        assert_eq!(fences, 100, "one fence per insert");
    }
}
