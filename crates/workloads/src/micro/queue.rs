//! `queue`: a persistent ring buffer.
//!
//! Enqueues append sequentially; dequeues advance the head. Each
//! operation persists the entry line and the head/tail metadata line —
//! the *best* spatial locality of the micro set (consecutive entries
//! share bitmap lines, so STAR's ADR almost never spills).

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;

/// A persistent single-producer queue workload (70% enqueue, 30%
/// dequeue).
#[derive(Debug, Clone)]
pub struct QueueWorkload {
    pmem: Pmem,
    meta_line: u64,
    ring_base: u64,
    ring_lines: u64,
    head: u64,
    tail: u64,
    volatile: VolatileSet,
    rng: SimRng,
}

impl QueueWorkload {
    /// A ring sized to most of the workload heap.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let meta_line = pmem.alloc(1);
        let ring_lines = HEAP_LINES - (8 << 20) / 64 - 8;
        let ring_base = pmem.alloc(ring_lines);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            meta_line,
            ring_base,
            ring_lines,
            head: 0,
            tail: 0,
            volatile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> u64 {
        self.tail - self.head
    }

    /// True when the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    fn enqueue(&mut self, sink: &mut dyn TraceSink) {
        let slot = self.ring_base + self.tail % self.ring_lines;
        // Write the entry, persist it, then persist the new tail pointer
        // (the standard two-step durable-queue protocol).
        self.pmem.store_persist(sink, slot);
        self.pmem.fence(sink);
        self.tail += 1;
        self.pmem.store_persist(sink, self.meta_line);
        self.pmem.fence(sink);
    }

    fn dequeue(&mut self, sink: &mut dyn TraceSink) {
        if self.is_empty() {
            return;
        }
        let slot = self.ring_base + self.head % self.ring_lines;
        self.pmem.load(sink, slot);
        self.head += 1;
        self.pmem.store_persist(sink, self.meta_line);
        self.pmem.fence(sink);
    }
}

impl Workload for QueueWorkload {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        self.pmem.work(sink, 300);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 3);
        if self.rng.gen_bool(0.7) || self.is_empty() {
            self.enqueue(sink);
        } else {
            self.dequeue(sink);
        }
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::{MemEvent, VecSink};

    #[test]
    fn entries_are_sequential() {
        let mut wl = QueueWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(50, &mut sink);
        let entry_lines: Vec<u64> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                MemEvent::Write { line, .. }
                    if *line >= wl.ring_base && *line < wl.ring_base + wl.ring_lines =>
                {
                    Some(*line)
                }
                _ => None,
            })
            .collect();
        for pair in entry_lines.windows(2) {
            assert_eq!(pair[1], pair[0] + 1, "enqueues append sequentially");
        }
        assert!(!entry_lines.is_empty());
    }

    #[test]
    fn queue_never_underflows() {
        let mut wl = QueueWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(500, &mut sink);
        assert!(wl.len() <= 500);
    }
}
