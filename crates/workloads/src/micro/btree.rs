//! `btree`: a persistent B-tree with random-key inserts.
//!
//! Nodes hold up to 16 keys across two 64-byte lines. Inserts descend
//! from the root (loads), split full children preemptively (writes to the
//! new sibling, the split child and the parent, each persisted in split
//! order), and finally persist the leaf. Locality sits between the
//! sequential queue and the random array: leaf writes scatter, but node
//! allocation is sequential and upper levels stay hot.

use crate::heap::{Pmem, VolatileSet};
use crate::micro::{HEAP_BASE, HEAP_LINES};
use crate::Workload;
use star_mem::TraceSink;
use star_rng::SimRng;

/// Maximum keys per node (order 17 B-tree).
const MAX_KEYS: usize = 16;
/// 64-byte lines per node (16 keys × 8 B).
const NODE_LINES: u64 = 2;

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u64>,
    children: Vec<usize>,
    base_line: u64,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The persistent B-tree workload.
#[derive(Debug, Clone)]
pub struct BtreeWorkload {
    pmem: Pmem,
    nodes: Vec<Node>,
    root: usize,
    volatile: VolatileSet,
    rng: SimRng,
}

impl BtreeWorkload {
    /// An empty tree over the workload heap.
    pub fn new(seed: u64) -> Self {
        let mut pmem = Pmem::new(HEAP_BASE, HEAP_LINES);
        let base_line = pmem.alloc(NODE_LINES);
        let volatile = VolatileSet::new(&mut pmem, (8 << 20) / 64);
        Self {
            pmem,
            nodes: vec![Node {
                keys: Vec::new(),
                children: Vec::new(),
                base_line,
            }],
            root: 0,
            volatile,
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Total keys stored.
    pub fn len(&self) -> usize {
        self.nodes.iter().map(|n| n.keys.len()).sum()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (for tests).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while !self.nodes[n].is_leaf() {
            n = self.nodes[n].children[0];
            h += 1;
        }
        h
    }

    fn persist_node(&mut self, sink: &mut dyn TraceSink, idx: usize) {
        let base = self.nodes[idx].base_line;
        for l in 0..NODE_LINES {
            self.pmem.store_persist(sink, base + l);
        }
    }

    fn load_node(&mut self, sink: &mut dyn TraceSink, idx: usize) {
        let base = self.nodes[idx].base_line;
        for l in 0..NODE_LINES {
            self.pmem.load(sink, base + l);
        }
    }

    /// Splits full child `ci` of `parent`, persisting sibling → child →
    /// parent (crash-safe order).
    fn split_child(&mut self, sink: &mut dyn TraceSink, parent: usize, ci: usize) {
        let child = self.nodes[parent].children[ci];
        let mid = MAX_KEYS / 2;
        let up_key = self.nodes[child].keys[mid];
        let right_keys = self.nodes[child].keys.split_off(mid + 1);
        self.nodes[child].keys.pop(); // the separator moves up
        let right_children = if self.nodes[child].is_leaf() {
            Vec::new()
        } else {
            self.nodes[child].children.split_off(mid + 1)
        };
        let base_line = self.pmem.alloc(NODE_LINES);
        let sibling = self.nodes.len();
        self.nodes.push(Node {
            keys: right_keys,
            children: right_children,
            base_line,
        });
        self.nodes[parent].keys.insert(ci, up_key);
        self.nodes[parent].children.insert(ci + 1, sibling);

        self.persist_node(sink, sibling);
        self.pmem.fence(sink);
        self.persist_node(sink, child);
        self.pmem.fence(sink);
        self.persist_node(sink, parent);
        self.pmem.fence(sink);
    }

    fn insert(&mut self, sink: &mut dyn TraceSink, key: u64) {
        if self.nodes[self.root].keys.len() == MAX_KEYS {
            // Grow a new root and split the old one under it.
            let base_line = self.pmem.alloc(NODE_LINES);
            let new_root = self.nodes.len();
            self.nodes.push(Node {
                keys: Vec::new(),
                children: vec![self.root],
                base_line,
            });
            self.root = new_root;
            self.split_child(sink, new_root, 0);
        }
        let mut cur = self.root;
        loop {
            self.load_node(sink, cur);
            let pos = self.nodes[cur].keys.partition_point(|&k| k < key);
            if self.nodes[cur].is_leaf() {
                self.nodes[cur].keys.insert(pos, key);
                self.persist_node(sink, cur);
                self.pmem.fence(sink);
                return;
            }
            let child = self.nodes[cur].children[pos];
            if self.nodes[child].keys.len() == MAX_KEYS {
                self.split_child(sink, cur, pos);
                // Re-route around the new separator.
                let pos = self.nodes[cur].keys.partition_point(|&k| k < key);
                cur = self.nodes[cur].children[pos];
            } else {
                cur = child;
            }
        }
    }
}

impl Workload for BtreeWorkload {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn step(&mut self, sink: &mut dyn TraceSink) {
        let key: u64 = self.rng.gen_u64();
        self.pmem.work(sink, 700);
        self.volatile.churn(&mut self.pmem, sink, &mut self.rng, 4);
        self.insert(sink, key);
    }

    fn fork_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_mem::VecSink;

    #[test]
    fn inserts_all_keys() {
        let mut wl = BtreeWorkload::new(1);
        let mut sink = VecSink::new();
        wl.run(1_000, &mut sink);
        assert_eq!(wl.len(), 1_000);
    }

    #[test]
    fn keys_stay_sorted_in_every_node() {
        let mut wl = BtreeWorkload::new(2);
        let mut sink = VecSink::new();
        wl.run(2_000, &mut sink);
        for node in &wl.nodes {
            assert!(node.keys.windows(2).all(|w| w[0] <= w[1]));
            assert!(node.keys.len() <= MAX_KEYS);
            if !node.is_leaf() {
                assert_eq!(node.children.len(), node.keys.len() + 1);
            }
        }
    }

    #[test]
    fn tree_grows_logarithmically() {
        let mut wl = BtreeWorkload::new(3);
        let mut sink = VecSink::new();
        wl.run(3_000, &mut sink);
        let h = wl.height();
        assert!((3..=5).contains(&h), "height {h} for 3000 keys, order 17");
    }

    #[test]
    fn splits_persist_sibling_before_parent() {
        let mut wl = BtreeWorkload::new(4);
        let mut sink = VecSink::new();
        wl.run(100, &mut sink);
        // At least one split must have happened for 100 keys.
        assert!(wl.nodes.len() > 1);
    }
}
