//! The workload registry.

use crate::micro::{ArrayWorkload, BtreeWorkload, HashWorkload, QueueWorkload, RbtreeWorkload};
use crate::tpcc::TpccWorkload;
use crate::ycsb::YcsbWorkload;
use crate::Workload;

/// The seven evaluation workloads, in the order the paper's figures list
/// them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Random array updates.
    Array,
    /// B-tree inserts.
    Btree,
    /// Hash-table inserts/updates.
    Hash,
    /// Ring-buffer enqueue/dequeue.
    Queue,
    /// Red-black-tree inserts.
    Rbtree,
    /// WHISPER TPC-C transaction mix.
    Tpcc,
    /// WHISPER YCSB-A key-value mix.
    Ycsb,
}

impl WorkloadKind {
    /// The five micro-benchmarks.
    pub const MICROS: [WorkloadKind; 5] = [
        WorkloadKind::Array,
        WorkloadKind::Btree,
        WorkloadKind::Hash,
        WorkloadKind::Queue,
        WorkloadKind::Rbtree,
    ];

    /// The two macro-benchmarks.
    pub const MACROS: [WorkloadKind; 2] = [WorkloadKind::Tpcc, WorkloadKind::Ycsb];

    /// All seven workloads.
    pub const ALL: [WorkloadKind; 7] = [
        WorkloadKind::Array,
        WorkloadKind::Btree,
        WorkloadKind::Hash,
        WorkloadKind::Queue,
        WorkloadKind::Rbtree,
        WorkloadKind::Tpcc,
        WorkloadKind::Ycsb,
    ];

    /// Builds a fresh instance seeded with `seed`.
    pub fn instantiate(self, seed: u64) -> Box<dyn Workload> {
        match self {
            WorkloadKind::Array => Box::new(ArrayWorkload::new(seed)),
            WorkloadKind::Btree => Box::new(BtreeWorkload::new(seed)),
            WorkloadKind::Hash => Box::new(HashWorkload::new(seed)),
            WorkloadKind::Queue => Box::new(QueueWorkload::new(seed)),
            WorkloadKind::Rbtree => Box::new(RbtreeWorkload::new(seed)),
            WorkloadKind::Tpcc => Box::new(TpccWorkload::new(seed)),
            WorkloadKind::Ycsb => Box::new(YcsbWorkload::new(seed)),
        }
    }

    /// The figure label.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Array => "array",
            WorkloadKind::Btree => "btree",
            WorkloadKind::Hash => "hash",
            WorkloadKind::Queue => "queue",
            WorkloadKind::Rbtree => "rbtree",
            WorkloadKind::Tpcc => "tpcc",
            WorkloadKind::Ycsb => "ycsb",
        }
    }

    /// Parses a figure label back into a kind.
    pub fn from_label(label: &str) -> Option<WorkloadKind> {
        WorkloadKind::ALL.into_iter().find(|k| k.label() == label)
    }
}

impl core::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for k in WorkloadKind::ALL {
            assert_eq!(WorkloadKind::from_label(k.label()), Some(k));
            assert_eq!(k.instantiate(0).name(), k.label());
        }
        assert_eq!(WorkloadKind::from_label("nope"), None);
    }

    #[test]
    fn micro_and_macro_partition_all() {
        let mut combined: Vec<WorkloadKind> = WorkloadKind::MICROS.to_vec();
        combined.extend(WorkloadKind::MACROS);
        assert_eq!(combined, WorkloadKind::ALL.to_vec());
    }
}
