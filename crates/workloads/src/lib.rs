//! The paper's evaluation workloads.
//!
//! Five persistent micro-benchmarks — **array**, **btree**, **hash**,
//! **queue**, **rbtree** — widely used across the persistent-memory
//! literature the paper cites, plus two WHISPER-style macro-benchmarks —
//! **tpcc** and **ycsb**. Each is a *real* Rust data structure operating
//! on a simulated persistent heap: every operation emits the
//! load/store/`clwb`/`sfence` reference stream a persistent-memory
//! program would issue, which is all the secure memory controller
//! observes.
//!
//! The workloads differ exactly where the paper's figures need them to:
//! the queue and log-structured macros have high spatial locality (STAR's
//! bitmap lines rarely spill), while array and hash scatter writes across
//! the heap (the paper's two worst cases for STAR's extra traffic).
//!
//! ```
//! use star_workloads::{Workload, WorkloadKind};
//! use star_mem::VecSink;
//!
//! let mut wl = WorkloadKind::Queue.instantiate(7);
//! let mut sink = VecSink::new();
//! wl.run(100, &mut sink);
//! assert!(sink.clwb_count() > 0, "persistent workloads persist");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod heap;
pub mod kind;
pub mod micro;
pub mod multi;
pub mod tpcc;
pub mod ycsb;
pub mod zipf;

pub use arrival::{LoadShape, OpenLoopArrivals};
pub use heap::{Pmem, VolatileSet};
pub use kind::WorkloadKind;
pub use multi::MultiThreaded;
pub use zipf::Zipfian;

use star_mem::TraceSink;

/// A benchmark that drives a [`TraceSink`] (usually the secure memory
/// engine) with its reference stream.
///
/// `Send` is a supertrait so a boxed workload can move into a worker
/// thread of the parallel sweep runner (`star-sweep`) together with the
/// engine it drives.
///
/// The unit of progress is one [`step`](Workload::step);
/// [`run`](Workload::run) is `ops` steps by definition (the provided
/// method). Crash-schedule exploration relies on this: it checkpoints a
/// run *between* steps with [`fork_box`](Workload::fork_box) and
/// re-executes single steps against forked engines, which is only
/// equivalent to a replay because `run` cannot do anything a sequence of
/// `step`s would not.
pub trait Workload: Send {
    /// Short name, as the paper's figures label it.
    fn name(&self) -> &'static str;

    /// Executes one operation against `sink`.
    fn step(&mut self, sink: &mut dyn TraceSink);

    /// Executes `ops` operations against `sink`.
    fn run(&mut self, ops: usize, sink: &mut dyn TraceSink) {
        for _ in 0..ops {
            self.step(sink);
        }
    }

    /// An independent copy of the workload in its exact current state
    /// (RNG position, allocator, in-memory structures), boxed so trait
    /// objects can be checkpointed. Stepping the fork and the original
    /// produces identical reference streams.
    fn fork_box(&self) -> Box<dyn Workload>;
}
