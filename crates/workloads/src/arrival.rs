//! Open-loop request arrival processes for the service simulator
//! (star-serve).
//!
//! A tenant's offered load is a nonhomogeneous Poisson process: a base
//! rate modulated by a [`LoadShape`] (diurnal sinusoid plus periodic
//! burst storms). Arrival times are drawn by Lewis–Shedler thinning
//! against the shape's rate envelope, so the stream is exact for the
//! modulated rate and fully determined by the seed — the property the
//! byte-identical serve grids rely on.

use star_rng::SimRng;

/// Nanoseconds per second, the unit boundary the arrival clock crosses.
pub const NS_PER_S: f64 = 1e9;

/// A deterministic rate modulator: diurnal sinusoid × burst windows.
///
/// The multiplier at time *t* is
/// `(1 + A·sin(2πt/P)) · (B if t mod E < L else 1)` where `A` is the
/// diurnal amplitude, `P` the diurnal period, and bursts multiply the
/// rate by `B` for the first `L` seconds of every `E`-second window.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadShape {
    /// Diurnal amplitude `A` in `[0, 1)`; 0 disables the sinusoid.
    pub diurnal_amplitude: f64,
    /// Diurnal period `P` in seconds.
    pub diurnal_period_s: f64,
    /// Burst multiplier `B >= 1`; 1 disables bursts.
    pub burst_mult: f64,
    /// Burst window length `E` in seconds.
    pub burst_every_s: f64,
    /// Burst duration `L` in seconds (the leading slice of each window).
    pub burst_len_s: f64,
}

impl LoadShape {
    /// A flat shape: multiplier 1 everywhere.
    pub fn flat() -> Self {
        Self {
            diurnal_amplitude: 0.0,
            diurnal_period_s: 1.0,
            burst_mult: 1.0,
            burst_every_s: 0.0,
            burst_len_s: 0.0,
        }
    }

    /// A pure diurnal sinusoid of amplitude `a` and period `period_s`.
    pub fn diurnal(a: f64, period_s: f64) -> Self {
        Self {
            diurnal_amplitude: a,
            diurnal_period_s: period_s,
            ..Self::flat()
        }
    }

    /// Burst storms: ×`mult` for the first `len_s` of every `every_s`.
    pub fn bursty(mult: f64, every_s: f64, len_s: f64) -> Self {
        Self {
            burst_mult: mult,
            burst_every_s: every_s,
            burst_len_s: len_s,
            ..Self::flat()
        }
    }

    /// The rate multiplier at absolute time `t_ns`.
    pub fn multiplier(&self, t_ns: u64) -> f64 {
        let t_s = t_ns as f64 / NS_PER_S;
        let mut m = 1.0;
        if self.diurnal_amplitude > 0.0 && self.diurnal_period_s > 0.0 {
            let phase = t_s / self.diurnal_period_s * std::f64::consts::TAU;
            m *= 1.0 + self.diurnal_amplitude * phase.sin();
        }
        if self.burst_mult > 1.0
            && self.burst_every_s > 0.0
            && t_s % self.burst_every_s < self.burst_len_s
        {
            m *= self.burst_mult;
        }
        m.max(0.0)
    }

    /// An upper bound on [`multiplier`](Self::multiplier) over all time —
    /// the thinning envelope.
    pub fn max_multiplier(&self) -> f64 {
        let diurnal = 1.0 + self.diurnal_amplitude.max(0.0);
        let burst = self.burst_mult.max(1.0);
        diurnal * burst
    }
}

/// An open-loop arrival stream: iterator over arrival times in
/// nanoseconds, strictly increasing, ending at the horizon.
///
/// Implements Lewis–Shedler thinning: candidate gaps are exponential at
/// the envelope rate `rate_per_s × max_multiplier`, and each candidate
/// is accepted with probability `multiplier(t) / max_multiplier`.
#[derive(Debug, Clone)]
pub struct OpenLoopArrivals {
    rng: SimRng,
    shape: LoadShape,
    envelope_per_ns: f64,
    t_ns: u64,
    horizon_ns: u64,
}

impl OpenLoopArrivals {
    /// A stream of arrivals at base rate `rate_per_s` shaped by `shape`,
    /// over `[0, horizon_ns)`, fully determined by `seed`.
    pub fn new(seed: u64, rate_per_s: f64, shape: LoadShape, horizon_ns: u64) -> Self {
        let envelope_per_ns = rate_per_s.max(0.0) * shape.max_multiplier() / NS_PER_S;
        Self {
            rng: SimRng::seed_from_u64(seed),
            shape,
            envelope_per_ns,
            t_ns: 0,
            horizon_ns,
        }
    }
}

impl Iterator for OpenLoopArrivals {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.envelope_per_ns <= 0.0 {
            return None;
        }
        let max_mult = self.shape.max_multiplier();
        loop {
            if self.t_ns >= self.horizon_ns {
                return None;
            }
            // Exponential gap at the envelope rate; at least 1 ns so the
            // per-tenant stream is strictly increasing (a total order the
            // event loop's sort key relies on).
            let u = self.rng.gen_f64();
            let gap_ns = (-(1.0 - u).ln() / self.envelope_per_ns).ceil();
            let gap_ns = if gap_ns >= 1.0 { gap_ns as u64 } else { 1 };
            self.t_ns = self.t_ns.saturating_add(gap_ns);
            if self.t_ns >= self.horizon_ns {
                return None;
            }
            let accept = self.shape.multiplier(self.t_ns) / max_mult;
            if self.rng.gen_f64() < accept {
                return Some(self.t_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_rate_hits_expected_count() {
        let n = OpenLoopArrivals::new(1, 100.0, LoadShape::flat(), 10 * NS_PER_S as u64).count();
        // 1000 expected arrivals; Poisson σ ≈ 32.
        assert!((850..1150).contains(&n), "got {n}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> =
            OpenLoopArrivals::new(7, 50.0, LoadShape::bursty(4.0, 2.0, 0.5), 4_000_000_000)
                .collect();
        let b: Vec<_> =
            OpenLoopArrivals::new(7, 50.0, LoadShape::bursty(4.0, 2.0, 0.5), 4_000_000_000)
                .collect();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert!(a.iter().all(|&t| t < 4_000_000_000));
    }

    #[test]
    fn bursts_concentrate_arrivals() {
        let shape = LoadShape::bursty(8.0, 10.0, 1.0);
        let arrivals: Vec<_> =
            OpenLoopArrivals::new(3, 20.0, shape.clone(), 100 * NS_PER_S as u64).collect();
        let in_burst = arrivals
            .iter()
            .filter(|&&t| (t as f64 / NS_PER_S) % 10.0 < 1.0)
            .count();
        // Burst slices are 10% of wall time but ×8 rate ⇒ ~47% of load.
        assert!(
            in_burst as f64 / arrivals.len() as f64 > 0.3,
            "{in_burst}/{} arrivals in burst windows",
            arrivals.len()
        );
    }

    #[test]
    fn diurnal_shape_modulates() {
        let shape = LoadShape::diurnal(0.9, 100.0);
        // Peak at t = P/4, trough at t = 3P/4.
        let peak = shape.multiplier(25 * NS_PER_S as u64);
        let trough = shape.multiplier(75 * NS_PER_S as u64);
        assert!(peak > 1.8 && trough < 0.2, "peak {peak}, trough {trough}");
        assert!(shape.max_multiplier() >= peak);
    }

    #[test]
    fn zero_rate_is_empty() {
        assert_eq!(
            OpenLoopArrivals::new(1, 0.0, LoadShape::flat(), 1_000_000).count(),
            0
        );
    }
}
