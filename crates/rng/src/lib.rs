//! A small, deterministic, dependency-free PRNG.
//!
//! The simulation must build and test with **no registry access**, so the
//! workloads and randomized tests cannot pull in the `rand` crate. This
//! crate provides the few primitives they actually use, backed by
//! xoshiro256** (Blackman & Vigna) seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses. Streams are fully
//! determined by the seed, which the experiment harness relies on to give
//! every scheme an identical trace.
//!
//! ```
//! use star_rng::SimRng;
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.gen_u64(), b.gen_u64(), "same seed, same stream");
//! assert!(a.gen_range(0..10) < 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// SplitMix64 step — used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent per-lane seed from a master seed (one
/// SplitMix64 step with the lane index folded into the state), so
/// adjacent lanes get unrelated streams. Shared by everything that fans
/// one master seed out across concurrent generators — star-serve tenant
/// streams and star-shard lane workloads.
pub fn lane_seed(master: u64, lane: u64) -> u64 {
    let mut state = master.wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    splitmix64(&mut state)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64
        // cannot produce four zeros from any seed, but keep the guard.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    /// The next 64 raw bits of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniformly random `u32`.
    pub fn gen_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random `u8`.
    pub fn gen_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A uniform draw from the half-open range `r` (Lemire's method,
    /// bias rejected).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, r: Range<u64>) -> u64 {
        assert!(r.start < r.end, "gen_range over an empty range");
        r.start + self.below(r.end - r.start)
    }

    /// A uniform draw from the inclusive range `r`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_inclusive(&mut self, r: RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*r.start(), *r.end());
        assert!(lo <= hi, "gen_range_inclusive over an empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// A uniform draw from `0..n` as `usize`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index over an empty range");
        self.below(n as u64) as usize
    }

    /// Uniform in `0..n` (n > 0), without modulo bias.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Widening-multiply rejection sampling (Lemire 2018).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range_inclusive(5..=7);
            assert!((5..=7).contains(&w));
            assert!(rng.gen_index(13) < 13);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut counts = [0u32; 8];
        const DRAWS: u32 = 80_000;
        for _ in 0..DRAWS {
            counts[rng.gen_range(0..8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = DRAWS / 8;
            assert!(
                c > expect - expect / 10 && c < expect + expect / 10,
                "bucket {i} has {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut below_half = 0;
        for _ in 0..10_000 {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                below_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&below_half), "{below_half}");
    }

    #[test]
    fn bool_probability_is_respected() {
        let mut rng = SimRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.05)).count();
        assert!((300..700).contains(&hits), "5% of 10k draws, got {hits}");
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = SimRng::seed_from_u64(7);
        // Must not overflow the `hi - lo + 1` width computation.
        rng.gen_range_inclusive(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(0).gen_range(5..5);
    }
}
