//! The tentpole property: fork-based crash exploration is **byte-
//! identical** to from-scratch replay.
//!
//! [`CrashExplorer`]'s fork strategy executes the workload once and
//! forks the machine at each persist point; the replay strategy (the
//! oracle) re-runs the workload from scratch per case with a crash
//! armed. Both feed the same seize/adjudicate pipeline, so for every
//! scheme, fault, sampling mode and worker count the resulting
//! [`ExploreReport`] — down to its JSON bytes — must be identical.

use star_core::SchemeKind;
use star_faultsim::{CrashExplorer, ExploreStrategy, FaultKind, Outcome};
use star_workloads::WorkloadKind;

fn replay_json(explorer: &CrashExplorer) -> String {
    explorer
        .clone()
        .with_strategy(ExploreStrategy::Replay)
        .explore()
        .to_json()
}

fn assert_strategies_agree(explorer: CrashExplorer, what: &str) {
    let oracle = replay_json(&explorer);
    for threads in [1usize, 2, 4] {
        let forked = explorer
            .clone()
            .with_strategy(ExploreStrategy::Fork)
            .with_threads(threads)
            .explore()
            .to_json();
        assert_eq!(
            forked, oracle,
            "{what}: fork report at {threads} threads diverged from replay"
        );
    }
}

#[test]
fn exhaustive_sweeps_are_byte_identical_across_strategies() {
    for scheme in SchemeKind::ALL {
        assert_strategies_agree(
            CrashExplorer::new(scheme, WorkloadKind::Array, 36, 11).all_points(),
            scheme.label(),
        );
    }
}

#[test]
fn every_workload_kind_agrees_across_strategies() {
    for workload in WorkloadKind::ALL {
        assert_strategies_agree(
            CrashExplorer::new(SchemeKind::Star, workload, 24, 5).all_points(),
            workload.label(),
        );
    }
}

#[test]
fn sampled_sweeps_are_byte_identical_across_strategies() {
    // A case budget far below the schedule length forces the seeded
    // sampler; both strategies must crash on the same points and agree.
    assert_strategies_agree(
        CrashExplorer::new(SchemeKind::Star, WorkloadKind::Btree, 90, 3)
            .with_max_cases(17)
            .with_sample_seed(29),
        "sampled",
    );
}

#[test]
fn faulted_sweeps_are_byte_identical_across_strategies() {
    for fault in [
        FaultKind::DropWpq { max_entries: 4 },
        FaultKind::TornWrite,
        FaultKind::FlipMacBit { bit: 9 },
        FaultKind::FlipCounterBit { bit: 17 },
    ] {
        assert_strategies_agree(
            CrashExplorer::new(SchemeKind::Star, WorkloadKind::Hash, 32, 7)
                .all_points()
                .with_fault(fault),
            fault.label(),
        );
    }
}

#[test]
fn fork_sweeps_remain_silent_corruption_free() {
    // The headline claim holds under the fast strategy too, for a run
    // long enough to evict metadata and exercise recovery windows.
    let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Ycsb, 150, 13)
        .with_max_cases(64)
        .explore();
    assert!(report.total_points > 0);
    assert_eq!(report.count(Outcome::SilentCorruption), 0);
    assert_eq!(report.count(Outcome::NotReached), 0);
}
