//! Crash-schedule sweeps: the paper's recovery claims, checked at every
//! persist point.
//!
//! The headline test is the exhaustive STAR sweep: over a 200-op array
//! run, *every* persist point — including every window between a
//! data-line commit and the later write-back of its coalesced parent
//! counter/MAC node — must recover to the exact committed state. Silent
//! corruption anywhere is a hard failure for every recoverable scheme.

use star_core::persist::PersistPointKind;
use star_core::SchemeKind;
use star_faultsim::{CrashExplorer, FaultCase, FaultKind, Outcome};
use star_workloads::WorkloadKind;

fn is_data_commit(kind: Option<PersistPointKind>) -> bool {
    matches!(kind, Some(PersistPointKind::DataLineCommit { .. }))
}

fn is_node_writeback(kind: Option<PersistPointKind>) -> bool {
    matches!(kind, Some(PersistPointKind::NodeWriteback { .. }))
}

/// Acceptance sweep: exhaustive, >= 200 ops, zero silent corruption and
/// full recovery everywhere for STAR — in particular at every point
/// where a data line is durable but its parent counter/MAC node has not
/// been written back yet (`DataLineCommit`), and at every coalesced
/// parent write-back itself (`NodeWriteback`).
#[test]
fn star_exhaustive_sweep_recovers_at_every_persist_point() {
    let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 200, 42)
        .all_points()
        .explore();

    assert!(report.exhaustive);
    assert!(
        report.total_points >= 200,
        "200 ops must commit at least 200 persist points, got {}",
        report.total_points
    );
    assert_eq!(report.cases.len() as u64, report.total_points);

    let silent = report.silent_corruptions();
    assert!(silent.is_empty(), "STAR silently corrupted at {:?}", silent);
    for case in &report.cases {
        assert_eq!(
            case.outcome,
            Outcome::Recovered,
            "STAR must recover exactly at point {} ({:?}): {}",
            case.crash_at,
            case.kind,
            case.detail
        );
    }

    // The sweep genuinely covered both sides of the data/parent window.
    let data_commits = report
        .cases
        .iter()
        .filter(|c| is_data_commit(c.kind))
        .count();
    let writebacks = report
        .cases
        .iter()
        .filter(|c| is_node_writeback(c.kind))
        .count();
    assert!(
        data_commits >= 200,
        "every op commits a data line, got {data_commits}"
    );
    assert!(
        writebacks > 0,
        "the small metadata cache must evict during the run"
    );
}

#[test]
fn anubis_exhaustive_sweep_recovers_everywhere() {
    let report = CrashExplorer::new(SchemeKind::Anubis, WorkloadKind::Array, 60, 42)
        .all_points()
        .explore();
    assert!(report.total_points >= 60);
    for case in &report.cases {
        assert_eq!(
            case.outcome,
            Outcome::Recovered,
            "Anubis must recover at point {} ({:?}): {}",
            case.crash_at,
            case.kind,
            case.detail
        );
    }
}

#[test]
fn strict_sweep_is_never_silent_and_mid_chain_crashes_are_detected() {
    let report = CrashExplorer::new(SchemeKind::Strict, WorkloadKind::Array, 60, 42)
        .all_points()
        .explore();
    assert!(
        report.clean(),
        "strict silently corrupted: {:?}",
        report.silent_corruptions()
    );
    // Strict commits per line, not per branch: crashes after a completed
    // chain recover, crashes inside one are detected on readback.
    assert!(
        report.count(Outcome::Recovered) > 0,
        "chain-complete points recover"
    );
    assert!(
        report.count(Outcome::DetectedTamper) > 0,
        "mid-chain points are detected"
    );
    let chain_nodes = report
        .cases
        .iter()
        .filter(|c| matches!(c.kind, Some(PersistPointKind::StrictChainNode { .. })))
        .count();
    assert!(
        chain_nodes > 0,
        "strict schedules contain chain-node persist points"
    );
}

#[test]
fn wb_is_unrecoverable_at_every_point() {
    let report = CrashExplorer::new(SchemeKind::WriteBack, WorkloadKind::Array, 40, 7)
        .with_max_cases(24)
        .explore();
    assert!(!report.cases.is_empty());
    for case in &report.cases {
        assert_eq!(case.outcome, Outcome::Unrecoverable);
    }
}

/// Negative control: an injected MAC bit-flip must classify as detected
/// tampering — never as a successful recovery, never silently.
#[test]
fn mac_bit_flips_are_detected_not_recovered() {
    for bit in [0, 5, 63] {
        let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 60, 42)
            .with_fault(FaultKind::FlipMacBit { bit })
            .with_max_cases(32)
            .explore();
        assert!(!report.cases.is_empty());
        for case in &report.cases {
            assert_eq!(
                case.outcome,
                Outcome::DetectedTamper,
                "flipped MAC bit {bit} at point {} must be detected: {}",
                case.crash_at,
                case.detail
            );
        }
    }
}

#[test]
fn counter_bit_flips_are_detected() {
    let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 60, 42)
        .with_fault(FaultKind::FlipCounterBit { bit: 17 })
        .with_max_cases(32)
        .explore();
    assert!(!report.cases.is_empty());
    for case in &report.cases {
        assert_eq!(
            case.outcome,
            Outcome::DetectedTamper,
            "flipped counter bit at point {} must be detected: {}",
            case.crash_at,
            case.detail
        );
    }
}

/// Sub-line faults from the write journal: a torn 64-byte line and lost
/// write-queue entries must never pass readback silently under STAR with
/// its ADR-resident bookkeeping intact.
#[test]
fn torn_and_dropped_writes_are_never_silent_under_star() {
    for fault in [FaultKind::TornWrite, FaultKind::DropWpq { max_entries: 8 }] {
        let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 60, 42)
            .with_fault(fault)
            .with_max_cases(32)
            .explore();
        assert!(
            report.clean(),
            "{fault} silently corrupted: {:?}",
            report.silent_corruptions()
        );
        assert!(
            report.count(Outcome::DetectedTamper) > 0,
            "{fault} must be detected somewhere in the sweep"
        );
    }
}

/// Crashing exactly at a forced flush (counter-LSB window exhausted)
/// must recover: the flush is its own persist transaction.
#[test]
fn forced_flush_crash_points_recover() {
    let mut cfg = star_faultsim::faultsim_config();
    cfg.counter_lsb_bits = 2; // 3-increment window: flushes happen fast
    let explorer =
        CrashExplorer::new(SchemeKind::Star, WorkloadKind::Queue, 120, 42).with_config(cfg);
    let schedule = explorer.schedule();
    let flush_points: Vec<u64> = schedule
        .iter()
        .filter(|p| matches!(p.kind, PersistPointKind::ForcedFlush { .. }))
        .map(|p| p.seq)
        .collect();
    assert!(
        !flush_points.is_empty(),
        "a 2-bit window must force flushes"
    );
    for &seq in flush_points.iter().take(5) {
        let result = explorer.run_case(&FaultCase::crash_only(seq));
        assert_eq!(
            result.outcome,
            Outcome::Recovered,
            "forced-flush point {seq}: {}",
            result.detail
        );
    }
}

#[test]
fn exploration_is_deterministic_and_reports_are_machine_readable() {
    let explorer =
        CrashExplorer::new(SchemeKind::Star, WorkloadKind::Btree, 30, 9).with_max_cases(16);
    let a = explorer.explore();
    let b = explorer.explore();
    assert_eq!(a, b, "same plan, same report, bit for bit");

    let json = a.to_json();
    assert!(json.contains("\"scheme\":\"star\""));
    assert!(json.contains("\"workload\":\"btree\""));
    assert!(json.contains("\"silent-corruption\":0"));
    assert!(json.contains("\"cases\":["));
    assert_eq!(json.matches("\"crash_at\"").count(), a.cases.len());
}

/// The determinism contract of the parallel sweep runner, end to end:
/// the explore report — down to its JSON bytes — is a pure function of
/// the plan, regardless of how many worker threads replay the cases.
#[test]
fn parallel_exploration_is_byte_identical_across_thread_counts() {
    let explorer = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 60, 42).all_points();
    let serial = explorer.clone().with_threads(1).explore();
    assert!(serial.total_points > 8, "sweep must be big enough to shard");
    let serial_json = serial.to_json();
    for threads in [2, 4] {
        let parallel = explorer.clone().with_threads(threads).explore();
        assert_eq!(parallel, serial, "{threads} threads: same report");
        assert_eq!(
            parallel.to_json(),
            serial_json,
            "{threads} threads: byte-identical JSON"
        );
    }
}

/// Crashing past the end of the schedule is reported, not misclassified.
#[test]
fn crash_beyond_schedule_is_not_reached() {
    let explorer = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 10, 1);
    let total = explorer.schedule().len() as u64;
    let result = explorer.run_case(&FaultCase::crash_only(total + 1_000));
    assert_eq!(result.outcome, Outcome::NotReached);
}
