//! What the failure does to the medium, beyond losing volatile state.
//!
//! Faults are applied to the [`CrashImage`] *after* the ADR battery
//! flush, i.e. to what physically remains in NVM. The write journal
//! (pre-images + write-queue retirement times, recorded by `star-nvm`)
//! tells us which writes a crash at time *t* could still have affected.

use star_core::CrashImage;
use star_nvm::{AccessClass, Line, LineAddr, WriteRecord};
use std::collections::BTreeMap;

/// The fault vocabulary is defined next to [`star_core::CrashPlan`] so a
/// plan can carry it through the engine; this crate owns its *semantics*
/// ([`apply_fault`](self)).
pub use star_core::FaultKind;

/// Queue entries the ADR assumption protects: bitmap lines live *in* the
/// ADR domain proper and survive even on the platforms `DropWpq` models,
/// so only data/metadata/shadow-table writes are fair game.
fn droppable(record: &WriteRecord) -> bool {
    record.class != AccessClass::BitmapLine
}

/// Applies `fault` to the crash image. Returns `false` when the fault
/// has no target in this case (e.g. no write was in flight), in which
/// case the case is reported as [`Skipped`](crate::Outcome::Skipped).
///
/// `committed` maps data lines to their last durable version (the
/// readback oracle), `undrained` is the journal's view of the write
/// queue at crash time (oldest first).
pub(crate) fn apply_fault(
    image: &mut CrashImage,
    fault: &FaultKind,
    committed: &BTreeMap<u64, u64>,
    undrained: &[WriteRecord],
    last_committed_line: Option<u64>,
) -> bool {
    match fault {
        FaultKind::CrashOnly => true,
        FaultKind::DropWpq { max_entries } => {
            let victims: Vec<&WriteRecord> = undrained.iter().filter(|r| droppable(r)).collect();
            if victims.is_empty() || *max_entries == 0 {
                return false;
            }
            let start = victims.len().saturating_sub(*max_entries);
            // Newest-to-oldest, so when several dropped writes hit the
            // same line the oldest pre-image (the state before all of
            // them) is what remains.
            for r in victims[start..].iter().rev() {
                image.store.write(r.addr, r.pre_image);
            }
            true
        }
        FaultKind::TornWrite => {
            // Tear the newest write still in flight at the crash moment.
            let Some(r) = undrained.iter().rfind(|r| droppable(r)) else {
                return false;
            };
            let mut torn = r.new_line;
            torn.as_bytes_mut()[32..].copy_from_slice(&r.pre_image.as_bytes()[32..]);
            image.store.write(r.addr, torn);
            true
        }
        FaultKind::FlipMacBit { bit } => {
            let Some(line) = last_committed_line.or(committed.keys().next_back().copied()) else {
                return false;
            };
            flip_bit(image, LineAddr::new(line), 56 * 8 + (bit % 64) as usize)
        }
        FaultKind::FlipCounterBit { bit } => {
            let Some(line) = last_committed_line.or(committed.keys().next_back().copied()) else {
                return false;
            };
            let (parent, _) = image.geometry().parent_of_data(line);
            let addr = image.geometry().line_of(parent);
            flip_bit(image, addr, (bit % 448) as usize)
        }
    }
}

/// Flips one bit of a stored line. Refuses to turn a non-zero line into
/// the all-zero "never written" convention (that would be erasure, not
/// tampering) by flipping a second, adjacent bit — still a fault, still
/// non-zero.
fn flip_bit(image: &mut CrashImage, addr: LineAddr, bit: usize) -> bool {
    let mut line = image.store.read(addr);
    line.as_bytes_mut()[bit / 8] ^= 1 << (bit % 8);
    if line.is_zero() {
        line.as_bytes_mut()[(bit / 8 + 1) % 64] ^= 0x80;
    }
    image.store.write(addr, line);
    true
}

/// Convenience: a torn copy of `record`'s write, as `TornWrite` lands it.
pub fn torn_line(record: &WriteRecord) -> Line {
    let mut torn = record.new_line;
    torn.as_bytes_mut()[32..].copy_from_slice(&record.pre_image.as_bytes()[32..]);
    torn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::CrashOnly.label(), "crash-only");
        assert_eq!(FaultKind::DropWpq { max_entries: 4 }.label(), "drop-wpq");
        assert_eq!(FaultKind::TornWrite.label(), "torn-write");
        assert_eq!(FaultKind::FlipMacBit { bit: 3 }.label(), "flip-mac-bit");
        assert_eq!(
            FaultKind::FlipCounterBit { bit: 3 }.label(),
            "flip-counter-bit"
        );
    }

    #[test]
    fn torn_line_splices_halves() {
        let r = WriteRecord {
            seq: 1,
            addr: LineAddr::new(9),
            class: AccessClass::Data,
            pre_image: Line::filled(0xaa),
            new_line: Line::filled(0x55),
            complete_at_ps: 100,
        };
        let t = torn_line(&r);
        assert!(t.as_bytes()[..32].iter().all(|b| *b == 0x55));
        assert!(t.as_bytes()[32..].iter().all(|b| *b == 0xaa));
    }
}
