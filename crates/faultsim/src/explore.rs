//! The crash-schedule explorer.
//!
//! A dry run (instrumented, no crash armed) yields the run's complete
//! persist schedule; the explorer then replays the run once per chosen
//! schedule point with the crash injected there. Below the case budget
//! the sweep is exhaustive — every persist point is crashed on,
//! including the windows between a data-line commit and the later
//! write-back of its parent counter/MAC node. Above the budget, points
//! are drawn by seeded random sampling (deterministic per plan), always
//! keeping the first and last point.

use crate::case::{run_case, CaseResult, FaultCase};
use crate::fault::FaultKind;
use crate::report::ExploreReport;
use crate::{install_panic_filter, SimSetup};
use star_core::persist::PersistPoint;
use star_core::SecureMemory;
use star_rng::SimRng;
use star_sweep::SweepKey;
use std::collections::BTreeSet;

/// What to explore and how hard.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorePlan {
    /// The run under test.
    pub setup: SimSetup,
    /// Fault injected at every explored point.
    pub fault: FaultKind,
    /// Force crashing on every persist point regardless of `max_cases`.
    pub exhaustive: bool,
    /// Case budget when not exhaustive; schedules at most this long are
    /// swept exhaustively anyway.
    pub max_cases: usize,
    /// Seed for sampling points from over-budget schedules (independent
    /// of the workload seed so the two can be varied separately).
    pub sample_seed: u64,
    /// Worker threads replaying cases (1 = serial; any value produces a
    /// byte-identical report, see `star_sweep`'s determinism contract).
    pub threads: usize,
}

impl ExplorePlan {
    /// A clean-crash plan with the default sampling budget, serial.
    pub fn new(setup: SimSetup) -> Self {
        Self {
            setup,
            fault: FaultKind::CrashOnly,
            exhaustive: false,
            max_cases: 256,
            sample_seed: 1,
            threads: 1,
        }
    }

    /// Same plan with a different fault.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = fault;
        self
    }

    /// Same plan, forced exhaustive.
    pub fn all_points(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Same plan, replaying cases on `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Runs `setup` to completion with instrumentation on and no crash
/// armed, returning the full persist schedule.
pub fn persist_schedule(setup: &SimSetup) -> Vec<PersistPoint> {
    install_panic_filter();
    let mut engine = SecureMemory::new(setup.scheme, setup.cfg.clone());
    engine.enable_persist_log();
    let mut workload = setup.workload.instantiate(setup.seed);
    workload.run(setup.ops, &mut engine);
    engine.persist_log().to_vec()
}

/// Which schedule points a plan will crash on.
pub fn chosen_points(plan: &ExplorePlan, total_points: u64) -> Vec<u64> {
    if total_points == 0 {
        return Vec::new();
    }
    if plan.exhaustive || total_points <= plan.max_cases as u64 {
        return (1..=total_points).collect();
    }
    let mut picked: BTreeSet<u64> = BTreeSet::new();
    picked.insert(1);
    picked.insert(total_points);
    let mut rng = SimRng::seed_from_u64(plan.sample_seed);
    while picked.len() < plan.max_cases {
        picked.insert(rng.gen_range_inclusive(1..=total_points));
    }
    picked.into_iter().collect()
}

/// Explores the plan: one replay-and-recover case per chosen persist
/// point, classified and collected into a machine-readable report.
///
/// Cases are independent replays, so they shard across
/// `plan.threads` workers (see [`star_sweep`]); results merge back in
/// persist-point order, making the report — including its JSON bytes —
/// identical for every thread count.
pub fn explore(plan: &ExplorePlan) -> ExploreReport {
    let schedule = persist_schedule(&plan.setup);
    let total_points = schedule.len() as u64;
    let points = chosen_points(plan, total_points);
    let jobs: Vec<(SweepKey, FaultCase)> = points
        .iter()
        .map(|&seq| {
            (
                SweepKey {
                    rank: seq,
                    workload: plan.setup.workload.label(),
                    scheme: plan.setup.scheme.label(),
                    seed: plan.setup.seed,
                    case: seq,
                },
                FaultCase {
                    crash_at: seq,
                    fault: plan.fault,
                },
            )
        })
        .collect();
    let cases: Vec<CaseResult> =
        star_sweep::run_merged(plan.threads, jobs, |_, case| run_case(&plan.setup, case));
    ExploreReport {
        scheme: plan.setup.scheme,
        workload: plan.setup.workload,
        ops: plan.setup.ops,
        seed: plan.setup.seed,
        fault: plan.fault,
        total_points,
        exhaustive: points.len() as u64 == total_points,
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use star_core::SchemeKind;
    use star_workloads::WorkloadKind;

    fn tiny_plan() -> ExplorePlan {
        ExplorePlan::new(SimSetup::new(SchemeKind::Star, WorkloadKind::Array, 24, 3))
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = tiny_plan();
        let a = persist_schedule(&plan.setup);
        let b = persist_schedule(&plan.setup);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn small_schedules_are_swept_exhaustively() {
        let plan = tiny_plan();
        let points = chosen_points(&plan, 40);
        assert_eq!(points, (1..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn sampling_is_bounded_deterministic_and_keeps_extremes() {
        let plan = tiny_plan();
        let a = chosen_points(&plan, 100_000);
        let b = chosen_points(&plan, 100_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), plan.max_cases);
        assert_eq!(a.first(), Some(&1));
        assert_eq!(a.last(), Some(&100_000));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }
}
