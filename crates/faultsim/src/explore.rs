//! The crash-schedule explorer.
//!
//! [`CrashExplorer`] is the one builder behind every crash sweep — the
//! faultsim CLI, the sweep tests and `star-check`'s mid-run crash probes
//! all construct the same thing. It supports two strategies with
//! byte-identical reports:
//!
//! * [`ExploreStrategy::Fork`] (the default) executes the workload
//!   **once**, keeps one rolling machine checkpoint (an
//!   `engine.fork()` + `workload.fork_box()` pair, O(dirty-delta) via
//!   the copy-on-write line store), and at each chosen persist point
//!   re-steps a forked checkpoint with the crash armed. Only the crash,
//!   recovery and readback run per case.
//! * [`ExploreStrategy::Replay`] replays the run from scratch once per
//!   chosen point — O(ops × cases) work, kept as the oracle the fork
//!   strategy is checked against (see the `fork_equivalence` tests and
//!   the CI gate).
//!
//! Below the case budget the sweep is exhaustive — every persist point
//! is crashed on, including the windows between a data-line commit and
//! the later write-back of its parent counter/MAC node. Above the
//! budget, points are drawn by seeded random sampling (deterministic
//! per explorer), always keeping the first and last point.

use crate::case::{
    adjudicate, CaseResult, CaseTrace, FaultCase, ForkPoint, Outcome, JOURNAL_CAPACITY,
};
use crate::fault::FaultKind;
use crate::report::ExploreReport;
use crate::{faultsim_config, install_panic_filter};
use star_core::persist::{CrashRequested, PersistPoint};
use star_core::{CrashPlan, SchemeKind, SecureMemConfig, SecureMemory};
use star_rng::SimRng;
use star_sweep::SweepKey;
use star_trace::{merge, CatMask, TraceRecorder};
use star_workloads::{Workload, WorkloadKind};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// How the explorer reaches each crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExploreStrategy {
    /// Execute the workload once; fork the machine at each chosen
    /// persist point and run only the crash, recovery and readback per
    /// case. O(ops + cases) stepped operations in total.
    #[default]
    Fork,
    /// Replay the workload from scratch once per case: O(ops × cases).
    /// The oracle [`Fork`](ExploreStrategy::Fork) is checked against.
    Replay,
}

/// What drives the engine: a named workload from the paper's table, or
/// an arbitrary caller-supplied stream (e.g. `star-check` programs).
#[derive(Clone)]
enum Driver {
    Kind(WorkloadKind),
    Factory {
        /// Free-form report label — an owned `String`, so parameterized
        /// sweeps (per-shard, per-tenant, per-config factories) can
        /// carry labels built at runtime instead of flattening them
        /// into a lossy `&'static str`.
        label: String,
        make: Arc<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
    },
}

impl core::fmt::Debug for Driver {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Driver::Kind(k) => f.debug_tuple("Kind").field(k).finish(),
            Driver::Factory { label, .. } => f.debug_tuple("Factory").field(label).finish(),
        }
    }
}

/// The unified crash-sweep builder: which run, which fault, which
/// points, how parallel, and by which strategy.
///
/// ```
/// use star_core::SchemeKind;
/// use star_faultsim::{CrashExplorer, Outcome};
/// use star_workloads::WorkloadKind;
///
/// let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 40, 7).explore();
/// assert!(report.total_points > 0);
/// assert_eq!(report.count(Outcome::SilentCorruption), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CrashExplorer {
    scheme: SchemeKind,
    driver: Driver,
    ops: usize,
    seed: u64,
    cfg: SecureMemConfig,
    fault: FaultKind,
    exhaustive: bool,
    max_cases: usize,
    sample_seed: u64,
    threads: usize,
    strategy: ExploreStrategy,
}

impl CrashExplorer {
    /// An explorer over a named workload with the default faultsim
    /// configuration: clean crashes, sampled above a 256-case budget,
    /// serial, fork strategy.
    pub fn new(scheme: SchemeKind, workload: WorkloadKind, ops: usize, seed: u64) -> Self {
        Self {
            scheme,
            driver: Driver::Kind(workload),
            ops,
            seed,
            cfg: faultsim_config(),
            fault: FaultKind::CrashOnly,
            exhaustive: false,
            max_cases: 256,
            sample_seed: 1,
            threads: 1,
            strategy: ExploreStrategy::Fork,
        }
    }

    /// An explorer over a caller-supplied workload factory (`make` must
    /// return an identically-seeded fresh instance each call), driving
    /// `ops` steps under `cfg`. This is how `star-check` runs its
    /// programs through the shared crash machinery, and how the sweep
    /// bench drives workloads outside the paper's registry; `label`
    /// stands in for the workload name in reports and may be built at
    /// runtime (e.g. `format!("shard{i}")` for a parameterized sweep).
    pub fn with_workload_factory(
        scheme: SchemeKind,
        cfg: SecureMemConfig,
        label: impl Into<String>,
        ops: usize,
        make: Arc<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
    ) -> Self {
        Self {
            scheme,
            driver: Driver::Factory {
                label: label.into(),
                make,
            },
            ops,
            seed: 0,
            cfg,
            fault: FaultKind::CrashOnly,
            exhaustive: false,
            max_cases: 256,
            sample_seed: 1,
            threads: 1,
            strategy: ExploreStrategy::Fork,
        }
    }

    /// Same explorer under a different engine configuration.
    pub fn with_config(mut self, cfg: SecureMemConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Same explorer with a different fault.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = fault;
        self
    }

    /// Same explorer, forced exhaustive (every persist point regardless
    /// of the case budget).
    pub fn all_points(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Same explorer with a different case budget.
    pub fn with_max_cases(mut self, max_cases: usize) -> Self {
        self.max_cases = max_cases;
        self
    }

    /// Same explorer with a different point-sampling seed (independent
    /// of the workload seed so the two can be varied separately).
    pub fn with_sample_seed(mut self, sample_seed: u64) -> Self {
        self.sample_seed = sample_seed;
        self
    }

    /// Same explorer, adjudicating cases on `threads` workers (1 =
    /// serial; any value produces a byte-identical report, see
    /// `star_sweep`'s determinism contract).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same explorer under a different strategy.
    pub fn with_strategy(mut self, strategy: ExploreStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The engine configuration in use.
    pub fn config(&self) -> &SecureMemConfig {
        &self.cfg
    }

    /// The scheme under test.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// The injected fault.
    pub fn fault(&self) -> FaultKind {
        self.fault
    }

    fn instantiate(&self) -> Box<dyn Workload> {
        match &self.driver {
            Driver::Kind(kind) => kind.instantiate(self.seed),
            Driver::Factory { make, .. } => make(),
        }
    }

    fn workload_label(&self) -> &str {
        match &self.driver {
            Driver::Kind(kind) => kind.label(),
            Driver::Factory { label, .. } => label,
        }
    }

    fn key(&self, seq: u64) -> SweepKey {
        SweepKey {
            rank: seq,
            // `SweepKey.workload` is a `&'static str`; a factory's
            // dynamic label cannot live there, and does not need to —
            // `rank`/`case` already make every key unique and keys
            // never surface in reports (the report carries the real
            // label via `workload_label`).
            workload: match &self.driver {
                Driver::Kind(kind) => kind.label(),
                Driver::Factory { .. } => "factory",
            },
            scheme: self.scheme.label(),
            seed: self.seed,
            case: seq,
        }
    }

    /// Runs the workload to completion with instrumentation on and no
    /// crash armed, returning the full persist schedule.
    pub fn schedule(&self) -> Vec<PersistPoint> {
        self.schedule_by_op().0
    }

    /// [`schedule`](Self::schedule), plus the zero-based op index that
    /// committed each point (`op_of_point[seq - 1]`). The capture run
    /// uses this to checkpoint only before ops that commit a chosen
    /// point — on low-persist-rate workloads most ops commit nothing,
    /// and skipping their checkpoints is what keeps the fork strategy's
    /// overhead proportional to the number of cases, not the run length.
    pub fn schedule_by_op(&self) -> (Vec<PersistPoint>, Vec<usize>) {
        install_panic_filter();
        let mut engine = SecureMemory::new(self.scheme, self.cfg.clone());
        engine.enable_persist_log();
        let mut workload = self.instantiate();
        let mut op_of_point = Vec::new();
        for op in 0..self.ops {
            workload.step(&mut engine);
            op_of_point.resize(engine.persist_points() as usize, op);
        }
        (engine.persist_log().to_vec(), op_of_point)
    }

    /// Which schedule points this explorer will crash on, for a
    /// schedule of `total_points` points.
    pub fn chosen_points(&self, total_points: u64) -> Vec<u64> {
        if total_points == 0 {
            return Vec::new();
        }
        if self.exhaustive || total_points <= self.max_cases as u64 {
            return (1..=total_points).collect();
        }
        let mut picked: BTreeSet<u64> = BTreeSet::new();
        picked.insert(1);
        picked.insert(total_points);
        let mut rng = SimRng::seed_from_u64(self.sample_seed);
        while picked.len() < self.max_cases {
            picked.insert(rng.gen_range_inclusive(1..=total_points));
        }
        picked.into_iter().collect()
    }

    /// Executes the workload **once** and seizes a [`ForkPoint`] at
    /// each persist point in `wanted` (sorted ascending), by re-stepping
    /// a rolling machine checkpoint with the crash armed. Returns the
    /// persist schedule of what executed — the full run, or (when every
    /// wanted point was seized early) the prefix up to the op that
    /// committed the last one — and the seized points; wanted points
    /// beyond the schedule produce no fork (the run never reaches them).
    pub fn capture(&self, wanted: &[u64]) -> (Vec<PersistPoint>, Vec<ForkPoint>) {
        assert!(
            wanted.windows(2).all(|w| w[0] < w[1]),
            "wanted points must be sorted and distinct"
        );
        self.capture_impl(Some(wanted), None)
    }

    /// [`capture`](Self::capture) at **every** persist point of the run,
    /// without needing the schedule in advance (a single execution).
    pub fn capture_all(&self) -> (Vec<PersistPoint>, Vec<ForkPoint>) {
        self.capture_impl(None, None)
    }

    fn capture_impl(
        &self,
        wanted: Option<&[u64]>,
        commit_ops: Option<&BTreeSet<usize>>,
    ) -> (Vec<PersistPoint>, Vec<ForkPoint>) {
        install_panic_filter();
        let mut engine = SecureMemory::new(self.scheme, self.cfg.clone());
        engine.enable_persist_log();
        // Journal on during capture so a fork's journal matches what a
        // from-scratch replay would carry at the same point.
        engine.enable_write_journal(JOURNAL_CAPACITY);
        let mut workload = self.instantiate();
        let mut forks: Vec<ForkPoint> = Vec::new();
        let mut next = 0usize; // cursor into `wanted`
        for op in 0..self.ops {
            let want_more = wanted.is_none_or(|w| next < w.len());
            // One rolling checkpoint per step that might commit a wanted
            // point: the freeze inside fork() is O(lines dirtied since
            // the last freeze) and the clone shares every frozen layer.
            // With a `commit_ops` hint (from a schedule pre-pass), ops
            // known to commit nothing skip the checkpoint entirely.
            let mut checkpoint = if want_more && commit_ops.is_none_or(|s| s.contains(&op)) {
                Some((engine.fork(), workload.fork_box()))
            } else {
                None
            };
            let before = engine.persist_points();
            workload.step(&mut engine);
            let after = engine.persist_points();
            let Some((ck_engine, ck_workload)) = checkpoint.as_mut() else {
                debug_assert!(
                    !want_more
                        || wanted
                            .and_then(|w| w.get(next))
                            .is_none_or(|&seq| seq > after),
                    "commit-op hint must cover every op that commits a wanted point"
                );
                continue;
            };
            let targets: Vec<u64> = match wanted {
                Some(w) => {
                    let t: Vec<u64> = w[next..]
                        .iter()
                        .copied()
                        .take_while(|&s| s <= after)
                        .collect();
                    next += t.len();
                    t
                }
                None => (before + 1..=after).collect(),
            };
            for seq in targets {
                let mut fork = ck_engine.fork();
                let mut steps = ck_workload.fork_box();
                fork.arm(CrashPlan::at(seq));
                let run = catch_unwind(AssertUnwindSafe(|| steps.step(&mut fork)));
                let crash: CrashRequested = match run {
                    Err(payload) => match payload.downcast::<CrashRequested>() {
                        Ok(crash) => *crash,
                        // A non-crash panic is a genuine engine bug — do
                        // not classify it away.
                        Err(payload) => resume_unwind(payload),
                    },
                    Ok(()) => panic!(
                        "fork desync: crash armed at point {seq} did not fire while \
                         re-stepping the op that committed it"
                    ),
                };
                debug_assert_eq!(crash.seq, seq, "armed point and fired point must agree");
                let mut point = ForkPoint::seize(fork, crash);
                point.ops_completed = Some(op);
                forks.push(point);
            }
            // Every wanted point is seized: the rest of the run cannot
            // add forks, so don't execute it (this also keeps probes of
            // a *truncated* schedule from tripping over whatever cut the
            // schedule short — e.g. a shrink candidate whose later read
            // fails verification).
            if wanted.is_some_and(|w| next >= w.len()) {
                break;
            }
        }
        (engine.persist_log().to_vec(), forks)
    }

    /// Replays the run with a crash armed at `case.crash_at`, applies
    /// the fault to what survives, runs recovery, and classifies the
    /// result via the readback oracle. Fully deterministic in
    /// `(self, case)`; always replay-based regardless of the strategy
    /// (single cases have nothing to amortize).
    pub fn run_case(&self, case: &FaultCase) -> CaseResult {
        self.replay_impl(case, None).0
    }

    /// [`run_case`](Self::run_case) with tracing: the replayed engine
    /// records under `mask`, the injected crash and fault land on the
    /// timeline as `fault`-category instants (named `crash-injected`,
    /// then the fault's label, then the outcome's label), and recovery's
    /// phases continue on the same simulated clock.
    pub fn run_case_traced(&self, case: &FaultCase, mask: CatMask) -> (CaseResult, CaseTrace) {
        let (result, trace) = self.replay_impl(case, Some(mask));
        (result, trace.expect("tracing was requested"))
    }

    fn replay_impl(
        &self,
        case: &FaultCase,
        mask: Option<CatMask>,
    ) -> (CaseResult, Option<CaseTrace>) {
        install_panic_filter();
        let mut engine = SecureMemory::new(self.scheme, self.cfg.clone());
        if let Some(mask) = mask {
            engine.enable_trace(mask, 0);
        }
        engine.enable_persist_log();
        engine.enable_write_journal(JOURNAL_CAPACITY);
        engine.arm(CrashPlan::at(case.crash_at));

        let mut workload = self.instantiate();
        let ops = self.ops;
        let run = catch_unwind(AssertUnwindSafe(|| workload.run(ops, &mut engine)));
        let crash: CrashRequested = match run {
            Ok(()) => {
                let trace = mask.map(|_| CaseTrace {
                    events: engine.trace_events(),
                    hists: engine.trace_histograms().clone(),
                    dropped: engine.trace_dropped(),
                });
                let result = CaseResult {
                    crash_at: case.crash_at,
                    kind: None,
                    fault: case.fault,
                    outcome: Outcome::NotReached,
                    stale_count: 0,
                    recovery_reads: 0,
                    recovery_writes: 0,
                    recovery_time_ns: 0,
                    readback_checked: 0,
                    detail: format!(
                        "run committed only {} persist points",
                        engine.persist_points()
                    ),
                };
                return (result, trace);
            }
            Err(payload) => match payload.downcast::<CrashRequested>() {
                Ok(crash) => *crash,
                // Anything else is a genuine engine bug — do not
                // classify it away as a fault-injection outcome.
                Err(payload) => resume_unwind(payload),
            },
        };

        // Detach the pre-crash timeline (the crash consumes the engine)
        // and seed a second recorder on the same clock for the
        // annotations and recovery phases.
        let run_events = mask.map(|_| engine.trace_events());
        let run_hists = mask.map(|_| engine.trace_histograms().clone());
        let run_dropped = engine.trace_dropped();
        let mut rec = TraceRecorder::off();
        if let Some(mask) = mask {
            rec.enable(mask, 0);
            rec.set_now(engine.now_ps());
        }

        let point = ForkPoint::seize(engine, crash);
        let result = adjudicate(point, case.fault, &self.cfg, &mut rec);
        let trace = mask.map(|_| CaseTrace {
            events: merge(&[run_events.as_deref().unwrap_or_default(), &rec.events()]),
            hists: run_hists.unwrap_or_default(),
            dropped: run_dropped + rec.dropped(),
        });
        (result, trace)
    }

    /// Explores the run: one crash-and-recover case per chosen persist
    /// point, classified and collected into a machine-readable report.
    ///
    /// Cases are independent, so they shard across
    /// [`with_threads`](Self::with_threads) workers (see [`star_sweep`]);
    /// results merge back in persist-point order, making the report —
    /// including its JSON bytes — identical for every thread count *and*
    /// for both strategies.
    pub fn explore(&self) -> ExploreReport {
        match self.strategy {
            ExploreStrategy::Replay => self.explore_replay(),
            ExploreStrategy::Fork => self.explore_fork(),
        }
    }

    fn explore_replay(&self) -> ExploreReport {
        let schedule = self.schedule();
        let total_points = schedule.len() as u64;
        let points = self.chosen_points(total_points);
        let jobs: Vec<(SweepKey, FaultCase)> = points
            .iter()
            .map(|&seq| {
                (
                    self.key(seq),
                    FaultCase {
                        crash_at: seq,
                        fault: self.fault,
                    },
                )
            })
            .collect();
        let cases: Vec<CaseResult> =
            star_sweep::run_merged(self.threads, jobs, |_, case| self.run_case(case));
        self.report(total_points, cases)
    }

    fn explore_fork(&self) -> ExploreReport {
        // A fork-free schedule pre-pass learns the run length, which
        // points exist, and which op commits each one; the capture run
        // then checkpoints only before ops that commit a chosen point.
        // The pre-pass costs one plain execution, which the skipped
        // checkpoints repay many times over whenever persist points are
        // sparser than ops.
        let (schedule, op_of_point) = self.schedule_by_op();
        let total_points = schedule.len() as u64;
        let points = self.chosen_points(total_points);
        let commit_ops: BTreeSet<usize> = points
            .iter()
            .map(|&seq| op_of_point[(seq - 1) as usize])
            .collect();
        let (_, forks) = self.capture_impl(Some(&points), Some(&commit_ops));
        let jobs: Vec<(SweepKey, ForkPoint)> = forks
            .into_iter()
            .map(|point| (self.key(point.crash.seq), point))
            .collect();
        let cases: Vec<CaseResult> = star_sweep::run_merged(self.threads, jobs, |_, point| {
            adjudicate(
                point.clone(),
                self.fault,
                &self.cfg,
                &mut TraceRecorder::off(),
            )
        });
        self.report(total_points, cases)
    }

    fn report(&self, total_points: u64, cases: Vec<CaseResult>) -> ExploreReport {
        ExploreReport {
            scheme: self.scheme,
            workload: self.workload_label().to_string(),
            ops: self.ops,
            seed: self.seed,
            fault: self.fault,
            total_points,
            exhaustive: cases.len() as u64 == total_points,
            cases,
        }
    }
}

// ---------------------------------------------------------------------
// Deprecated pre-CrashExplorer surface, kept as thin forwarding shims.
// ---------------------------------------------------------------------

#[allow(deprecated)]
use crate::SimSetup;

/// What to explore and how hard.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer` instead")]
#[allow(deprecated)]
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorePlan {
    /// The run under test.
    pub setup: SimSetup,
    /// Fault injected at every explored point.
    pub fault: FaultKind,
    /// Force crashing on every persist point regardless of `max_cases`.
    pub exhaustive: bool,
    /// Case budget when not exhaustive; schedules at most this long are
    /// swept exhaustively anyway.
    pub max_cases: usize,
    /// Seed for sampling points from over-budget schedules (independent
    /// of the workload seed so the two can be varied separately).
    pub sample_seed: u64,
    /// Worker threads replaying cases (1 = serial; any value produces a
    /// byte-identical report, see `star_sweep`'s determinism contract).
    pub threads: usize,
}

#[allow(deprecated)]
impl ExplorePlan {
    /// A clean-crash plan with the default sampling budget, serial.
    pub fn new(setup: SimSetup) -> Self {
        Self {
            setup,
            fault: FaultKind::CrashOnly,
            exhaustive: false,
            max_cases: 256,
            sample_seed: 1,
            threads: 1,
        }
    }

    /// Same plan with a different fault.
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        self.fault = fault;
        self
    }

    /// Same plan, forced exhaustive.
    pub fn all_points(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Same plan, replaying cases on `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn explorer(&self) -> CrashExplorer {
        CrashExplorer::from(&self.setup)
            .with_fault(self.fault)
            .with_max_cases(self.max_cases)
            .with_sample_seed(self.sample_seed)
            .with_threads(self.threads)
            .with_strategy(ExploreStrategy::Replay)
    }
}

#[allow(deprecated)]
impl From<&SimSetup> for CrashExplorer {
    fn from(setup: &SimSetup) -> Self {
        CrashExplorer::new(setup.scheme, setup.workload, setup.ops, setup.seed)
            .with_config(setup.cfg.clone())
    }
}

/// Runs `setup` to completion with instrumentation on and no crash
/// armed, returning the full persist schedule.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer::schedule` instead")]
#[allow(deprecated)]
pub fn persist_schedule(setup: &SimSetup) -> Vec<PersistPoint> {
    CrashExplorer::from(setup).schedule()
}

/// Which schedule points a plan will crash on.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer::chosen_points` instead")]
#[allow(deprecated)]
pub fn chosen_points(plan: &ExplorePlan, total_points: u64) -> Vec<u64> {
    let mut explorer = plan.explorer();
    if plan.exhaustive {
        explorer = explorer.all_points();
    }
    explorer.chosen_points(total_points)
}

/// Explores the plan with the replay strategy (the pre-fork behavior).
#[deprecated(since = "0.7.0", note = "use `CrashExplorer::explore` instead")]
#[allow(deprecated)]
pub fn explore(plan: &ExplorePlan) -> ExploreReport {
    let mut explorer = plan.explorer();
    if plan.exhaustive {
        explorer = explorer.all_points();
    }
    explorer.explore()
}

/// Replays `setup` with a crash armed at `case.crash_at` and classifies
/// the outcome.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer::run_case` instead")]
#[allow(deprecated)]
pub fn run_case(setup: &SimSetup, case: &FaultCase) -> CaseResult {
    CrashExplorer::from(setup).run_case(case)
}

/// [`run_case`] with tracing.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer::run_case_traced` instead")]
#[allow(deprecated)]
pub fn run_case_traced(
    setup: &SimSetup,
    case: &FaultCase,
    mask: CatMask,
) -> (CaseResult, CaseTrace) {
    CrashExplorer::from(setup).run_case_traced(case, mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CrashExplorer {
        CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 24, 3)
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = tiny().schedule();
        let b = tiny().schedule();
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn small_schedules_are_swept_exhaustively() {
        let points = tiny().chosen_points(40);
        assert_eq!(points, (1..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn sampling_is_bounded_deterministic_and_keeps_extremes() {
        let explorer = tiny();
        let a = explorer.chosen_points(100_000);
        let b = explorer.chosen_points(100_000);
        assert_eq!(a, b);
        assert_eq!(a.len(), 256);
        assert_eq!(a.first(), Some(&1));
        assert_eq!(a.last(), Some(&100_000));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
    }

    #[test]
    fn capture_yields_one_fork_per_wanted_point() {
        let explorer = tiny();
        let schedule = explorer.schedule();
        let total = schedule.len() as u64;
        let wanted = [1, total / 2, total];
        let (captured_schedule, forks) = explorer.capture(&wanted);
        assert_eq!(captured_schedule, schedule);
        assert_eq!(forks.len(), wanted.len());
        for (point, &seq) in forks.iter().zip(&wanted) {
            assert_eq!(point.crash.seq, seq);
            assert!(point.ops_completed.is_some());
        }
    }

    /// Factory sweeps carry runtime-built labels end to end: through
    /// `workload_label`, into the report struct, and out in the JSON —
    /// the label plumbing parameterized (per-shard, per-tenant) sweeps
    /// rely on.
    #[test]
    fn factory_sweeps_carry_dynamic_labels_into_reports() {
        let shard = 3;
        let explorer = CrashExplorer::with_workload_factory(
            SchemeKind::Star,
            faultsim_config(),
            format!("shard{shard}/array"),
            24,
            Arc::new(|| WorkloadKind::Array.instantiate(3)),
        )
        .all_points();
        let report = explorer.explore();
        assert_eq!(report.workload, "shard3/array");
        assert!(report.to_json().contains("\"workload\":\"shard3/array\""));
        assert!(report.summary_table().contains("workload=shard3/array"));
    }

    #[test]
    fn wanted_points_beyond_the_schedule_produce_no_fork() {
        let explorer = tiny();
        let total = explorer.schedule().len() as u64;
        let (_, forks) = explorer.capture(&[1, total + 500]);
        assert_eq!(forks.len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_forward_to_the_explorer() {
        let setup = SimSetup::new(SchemeKind::Star, WorkloadKind::Array, 24, 3);
        assert_eq!(persist_schedule(&setup), tiny().schedule());
        let plan = ExplorePlan::new(setup);
        assert_eq!(chosen_points(&plan, 40), (1..=40).collect::<Vec<u64>>());
    }
}
