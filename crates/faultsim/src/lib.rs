//! Deterministic fault injection and crash-schedule exploration.
//!
//! The paper's recovery argument is a claim about *every* crash point,
//! not just the ones a demo happens to exercise: whichever persist point
//! a power failure lands on — including between a data-line write and
//! the later write-back of its (coalesced) parent counter/MAC node —
//! recovery must either restore the exact pre-crash state or *detect*
//! that it cannot. This crate turns that claim into a checkable,
//! machine-readable property:
//!
//! 1. **Persist points** — `star-core` numbers every durable transition
//!    (see `star_core::persist`); a dry run under a (workload, scheme,
//!    seed) triple yields the complete persist schedule.
//! 2. **Fault plans** — [`FaultKind`] describes what the failure does on
//!    top of the crash: nothing ([`FaultKind::CrashOnly`], the paper's
//!    ADR fault model), losing undrained write-queue entries
//!    ([`FaultKind::DropWpq`], the model *without* ADR), tearing a 64-byte
//!    line mid-write ([`FaultKind::TornWrite`]), or flipping stored
//!    MAC/counter bits ([`FaultKind::FlipMacBit`],
//!    [`FaultKind::FlipCounterBit`]).
//! 3. **Exploration** — [`CrashExplorer`] executes the run **once**,
//!    forks the whole machine at each chosen schedule point
//!    (exhaustively below a case budget, seeded-random sampling above),
//!    runs the scheme's recovery on each [`ForkPoint`], and classifies
//!    each case as [`Outcome::Recovered`], [`Outcome::DetectedTamper`]
//!    or [`Outcome::SilentCorruption`] — the last being a test failure
//!    for every recoverable scheme under the paper's fault model. The
//!    O(ops × cases) replay strategy ([`ExploreStrategy::Replay`]) is
//!    kept as the oracle the fork strategy is byte-identical to.
//!
//! Classification is grounded in a **readback oracle**: the persist log
//! tells us exactly which data version was durable at the crash point,
//! so after recovery a fresh engine boots from the image and reads every
//! committed line back through the full verify-and-decrypt path. A wrong
//! value that *verifies* is silent corruption; an integrity panic is a
//! detected one.
//!
//! ```
//! use star_core::SchemeKind;
//! use star_faultsim::{CrashExplorer, FaultKind, Outcome};
//! use star_workloads::WorkloadKind;
//!
//! let report = CrashExplorer::new(SchemeKind::Star, WorkloadKind::Array, 40, 7).explore();
//! assert!(report.total_points > 0);
//! assert_eq!(report.count(Outcome::SilentCorruption), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case;
pub mod explore;
pub mod fault;
pub mod report;

pub use case::{committed_versions, CaseResult, CaseTrace, FaultCase, ForkPoint, Outcome};
#[allow(deprecated)]
pub use explore::{explore, persist_schedule, run_case, run_case_traced, ExplorePlan};
pub use explore::{CrashExplorer, ExploreStrategy};
pub use fault::FaultKind;
pub use report::ExploreReport;

use star_core::persist::CrashRequested;
use star_core::{SchemeKind, SecureMemConfig};
use star_workloads::WorkloadKind;
use std::any::Any;
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// The engine configuration exploration uses: the data region covers
/// the whole 64 MB workload heap, while the metadata cache is kept
/// small (4 KB) so even short runs produce evictions — and therefore
/// `NodeWriteback` persist points — worth crashing on.
pub fn faultsim_config() -> SecureMemConfig {
    SecureMemConfig::builder()
        .data_lines(star_workloads::micro::HEAP_BASE + star_workloads::micro::HEAP_LINES)
        .metadata_cache_bytes(4 << 10)
        .metadata_cache_ways(4)
        .adr_bitmap_lines(4)
        .build()
        .expect("faultsim geometry is consistent")
}

/// One simulated run: which scheme and workload, how long, and from
/// which seed. Equal setups produce bit-identical persist schedules.
#[deprecated(since = "0.7.0", note = "use `CrashExplorer` instead")]
#[derive(Debug, Clone, PartialEq)]
pub struct SimSetup {
    /// Persistence scheme under test.
    pub scheme: SchemeKind,
    /// Workload driving the engine.
    pub workload: WorkloadKind,
    /// Operations the workload executes.
    pub ops: usize,
    /// Workload seed.
    pub seed: u64,
    /// Engine configuration (defaults to [`SimSetup::faultsim_config`]).
    pub cfg: SecureMemConfig,
}

#[allow(deprecated)]
impl SimSetup {
    /// A setup over the default fault-simulation configuration.
    pub fn new(scheme: SchemeKind, workload: WorkloadKind, ops: usize, seed: u64) -> Self {
        Self {
            scheme,
            workload,
            ops,
            seed,
            cfg: faultsim_config(),
        }
    }

    /// The engine configuration exploration uses (now canonical as the
    /// free function [`faultsim_config`]).
    pub fn faultsim_config() -> SecureMemConfig {
        faultsim_config()
    }

    /// Short scheme label used in reports (`wb`/`strict`/`anubis`/`star`).
    pub fn scheme_label(&self) -> &'static str {
        scheme_label(self.scheme)
    }
}

/// Short report label for a scheme (now canonical on
/// [`SchemeKind::label`]; kept as a function for existing callers).
pub fn scheme_label(scheme: SchemeKind) -> &'static str {
    scheme.label()
}

/// Parses a short scheme label (`wb`/`strict`/`anubis`/`star`).
pub fn scheme_from_label(label: &str) -> Option<SchemeKind> {
    SchemeKind::from_label(label)
}

static INSTALL_FILTER: Once = Once::new();

thread_local! {
    static QUIET_PANICS: Cell<u32> = const { Cell::new(0) };
}

/// Installs (once, process-wide) a panic hook that stays silent for the
/// panics fault injection provokes on purpose: [`CrashRequested`]
/// payloads, and anything raised while a `catch_quiet` scope is active
/// on the current thread. All other panics print as usual.
pub fn install_panic_filter() {
    INSTALL_FILTER.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<CrashRequested>() || QUIET_PANICS.with(|q| q.get()) > 0 {
                return;
            }
            prev(info);
        }));
    });
}

/// `catch_unwind` with panic printing suppressed for the duration (used
/// for readback probes, where an integrity panic is an *expected*
/// classification signal, not a bug to report on stderr). Public so the
/// differential checker (`star-check`) can probe readbacks the same way.
pub fn catch_quiet<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn Any + Send>> {
    install_panic_filter();
    QUIET_PANICS.with(|q| q.set(q.get() + 1));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    QUIET_PANICS.with(|q| q.set(q.get() - 1));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels_roundtrip() {
        for s in SchemeKind::ALL {
            assert_eq!(scheme_from_label(scheme_label(s)), Some(s));
        }
        assert_eq!(scheme_from_label("nope"), None);
    }

    #[test]
    fn catch_quiet_catches_and_stays_balanced() {
        let r = catch_quiet(|| panic!("expected"));
        assert!(r.is_err());
        QUIET_PANICS.with(|q| assert_eq!(q.get(), 0));
        assert_eq!(catch_quiet(|| 7).unwrap(), 7);
    }
}
