//! Running one crash case and classifying what recovery made of it.
//!
//! A case splits into two halves that this module keeps strictly
//! separate so the replay and fork strategies share them verbatim:
//!
//! * **Seizing** ([`ForkPoint::seize`]) — the moment an armed crash
//!   fires, extract everything the case needs from the dying engine:
//!   the crash image, the readback oracle, the write queue's in-flight
//!   view, the simulated clock.
//! * **Adjudication** (the crate-private `adjudicate`) — apply the
//!   medium fault to the
//!   image, run the scheme's recovery, and classify the result through
//!   the readback oracle.
//!
//! Whether the engine reached the crash point by a from-scratch replay
//! or by re-stepping a forked checkpoint is invisible to both halves,
//! which is what makes fork-based exploration byte-identical to
//! replay-based exploration.

use crate::catch_quiet;
use crate::fault::{apply_fault, FaultKind};
use star_core::persist::{CrashRequested, PersistPoint, PersistPointKind};
use star_core::{recover_traced, CrashImage, RecoveryError, SecureMemConfig, SecureMemory};
use star_nvm::WriteRecord;
use star_trace::{Histograms, TraceCategory, TraceEvent, TraceRecorder};
use std::collections::BTreeMap;

/// Ring capacity for the device write journal; faults only ever target
/// writes near the crash point, so this bounds memory without losing
/// anything relevant.
pub(crate) const JOURNAL_CAPACITY: usize = 4096;

/// Readback probes per case: every committed line when few, a
/// deterministic stride sample (always keeping the first and last
/// committed line) when many.
const MAX_READBACK_LINES: usize = 1024;

/// One crash case: where in the persist schedule, and what breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultCase {
    /// Persist point (1-based sequence number) the crash fires at.
    pub crash_at: u64,
    /// The accompanying medium fault.
    pub fault: FaultKind,
}

impl FaultCase {
    /// A clean crash at persist point `seq`.
    pub fn crash_only(seq: u64) -> Self {
        Self {
            crash_at: seq,
            fault: FaultKind::CrashOnly,
        }
    }
}

/// How one case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Outcome {
    /// Recovery succeeded and every committed data line read back with
    /// its exact pre-crash value through full verification.
    Recovered,
    /// The loss/tampering was *detected* — recovery refused (cache-tree
    /// mismatch) or a readback failed integrity verification. Expected
    /// for injected tampering and for Strict's mid-chain crash windows;
    /// never a silent failure.
    DetectedTamper,
    /// Recovery claimed success and readback verified, but some line
    /// returned the wrong value. A test failure for every recoverable
    /// scheme under the paper's fault model ([`FaultKind::CrashOnly`]).
    SilentCorruption,
    /// The scheme does not support recovery at all (the WB baseline).
    Unrecoverable,
    /// The run finished before reaching `crash_at`; nothing to classify.
    NotReached,
    /// The fault had no target at this point (e.g. `TornWrite` with an
    /// empty write queue); no crash semantics were exercised.
    Skipped,
}

impl Outcome {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Recovered => "recovered",
            Outcome::DetectedTamper => "detected-tamper",
            Outcome::SilentCorruption => "silent-corruption",
            Outcome::Unrecoverable => "unrecoverable",
            Outcome::NotReached => "not-reached",
            Outcome::Skipped => "skipped",
        }
    }

    /// Every classifiable outcome, in report order.
    pub const ALL: [Outcome; 6] = [
        Outcome::Recovered,
        Outcome::DetectedTamper,
        Outcome::SilentCorruption,
        Outcome::Unrecoverable,
        Outcome::NotReached,
        Outcome::Skipped,
    ];
}

impl core::fmt::Display for Outcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// The record one case leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// The persist point crashed at.
    pub crash_at: u64,
    /// What kind of durable transition that point committed (`None` when
    /// the run ended before reaching it).
    pub kind: Option<PersistPointKind>,
    /// The injected fault.
    pub fault: FaultKind,
    /// Classification.
    pub outcome: Outcome,
    /// Stale metadata nodes the crash left behind.
    pub stale_count: usize,
    /// Recovery's modeled line reads.
    pub recovery_reads: u64,
    /// Recovery's modeled line writes.
    pub recovery_writes: u64,
    /// Recovery's modeled time (100 ns per line access).
    pub recovery_time_ns: u64,
    /// Committed data lines read back through full verification.
    pub readback_checked: usize,
    /// Human-readable one-liner on how the classification was reached.
    pub detail: String,
}

/// Compressed kind label for reports.
pub(crate) fn kind_label(kind: PersistPointKind) -> &'static str {
    match kind {
        PersistPointKind::DataLineCommit { .. } => "data-line-commit",
        PersistPointKind::NodeWriteback { .. } => "node-writeback",
        PersistPointKind::ForcedFlush { .. } => "forced-flush",
        PersistPointKind::StrictChainNode { .. } => "strict-chain-node",
    }
}

/// The readback oracle: data line → last version durably committed at or
/// before persist point `upto`.
pub fn committed_versions(schedule: &[PersistPoint], upto: u64) -> BTreeMap<u64, u64> {
    let mut map = BTreeMap::new();
    for p in schedule.iter().take_while(|p| p.seq <= upto) {
        if let PersistPointKind::DataLineCommit { line, version } = p.kind {
            map.insert(line, version);
        }
    }
    map
}

/// The timeline one traced case left behind: the pre-crash engine
/// events, the crash and fault annotations ([`TraceCategory::Fault`]),
/// and the recovery phases, merged onto one clock.
#[derive(Debug, Clone)]
pub struct CaseTrace {
    /// Merged events in stable timestamp order.
    pub events: Vec<TraceEvent>,
    /// Device latency / queue-depth histograms of the pre-crash run.
    pub hists: Histograms,
    /// Events lost to ring-buffer wrap-around.
    pub dropped: u64,
}

/// A seized crash point: everything a crash at one persist point leaves
/// behind, extracted from the engine the instant its armed
/// `star_core::CrashPlan` fired.
///
/// One `ForkPoint` per persist point is the unit of fork-based
/// exploration ([`CrashExplorer`](crate::CrashExplorer) with
/// [`ExploreStrategy::Fork`](crate::ExploreStrategy::Fork)): the capture
/// pass produces them incrementally from rolling engine forks, and
/// adjudicating each one — fault application, recovery, readback — is
/// exactly the tail of a full replay, so the resulting [`CaseResult`]s
/// are byte-identical to replay-based ones.
#[derive(Debug, Clone)]
pub struct ForkPoint {
    /// The crash request that produced this point.
    pub crash: CrashRequested,
    /// Simulated clock at the crash.
    pub now_ps: u64,
    /// Dirty (stale-in-NVM) metadata nodes at crash time.
    pub stale_count: usize,
    /// What physically survives: the NVM contents after the ADR battery
    /// flush, plus the on-chip non-volatile registers.
    pub image: CrashImage,
    /// The readback oracle at this point: data line → last durably
    /// committed version.
    pub committed: BTreeMap<u64, u64>,
    /// The write journal's view of the in-flight write queue at crash
    /// time (oldest first) — the targets of sub-line faults.
    pub undrained: Vec<WriteRecord>,
    /// The most recently committed data line (tamper-fault target).
    pub last_committed_line: Option<u64>,
    /// Complete workload steps executed before the one that crashed.
    /// Known for captured forks; `None` for plain replays, which don't
    /// count steps.
    pub ops_completed: Option<usize>,
}

impl ForkPoint {
    /// Extracts the fork point from an engine whose armed crash just
    /// fired (its [`CrashRequested`] payload was caught by the caller).
    /// Consumes the engine: the crash image is everything that survives.
    pub fn seize(mut engine: SecureMemory, crash: CrashRequested) -> Self {
        engine.disarm_crash();
        // Snapshot what the crash-consuming image cannot carry: the
        // persist schedule (the oracle) and the write queue's view of
        // in-flight writes (fault targets).
        let schedule: Vec<PersistPoint> = engine.persist_log().to_vec();
        let now_ps = engine.now_ps();
        let undrained: Vec<WriteRecord> = engine
            .write_journal()
            .map(|j| j.undrained_at(now_ps))
            .unwrap_or_default();
        let committed = committed_versions(&schedule, crash.seq);
        let last_committed_line = match crash.kind {
            PersistPointKind::DataLineCommit { line, .. } => Some(line),
            _ => schedule.iter().rev().find_map(|p| match p.kind {
                PersistPointKind::DataLineCommit { line, .. } => Some(line),
                _ => None,
            }),
        };
        let image = engine.crash();
        let stale_count = image.stale_node_count();
        Self {
            crash,
            now_ps,
            stale_count,
            image,
            committed,
            undrained,
            last_committed_line,
            ops_completed: None,
        }
    }
}

/// The tail of a crash case, shared verbatim by the replay and fork
/// strategies: apply the fault to the image, run recovery, classify the
/// result through the readback oracle. `rec` carries the trace
/// annotations and must already sit at the point's crash time (pass
/// [`TraceRecorder::off`] when not tracing).
pub(crate) fn adjudicate(
    point: ForkPoint,
    fault: FaultKind,
    cfg: &SecureMemConfig,
    rec: &mut TraceRecorder,
) -> CaseResult {
    let ForkPoint {
        crash,
        now_ps,
        stale_count,
        mut image,
        committed,
        undrained,
        last_committed_line,
        ..
    } = point;
    rec.instant2(
        TraceCategory::Fault,
        "crash-injected",
        ("seq", crash.seq),
        ("stale_nodes", stale_count as u64),
    );

    if !apply_fault(
        &mut image,
        &fault,
        &committed,
        &undrained,
        last_committed_line,
    ) {
        return CaseResult {
            crash_at: crash.seq,
            kind: Some(crash.kind),
            fault,
            outcome: Outcome::Skipped,
            stale_count,
            recovery_reads: 0,
            recovery_writes: 0,
            recovery_time_ns: 0,
            readback_checked: 0,
            detail: "fault had no target at this point".into(),
        };
    }
    rec.instant(TraceCategory::Fault, fault.label(), ("seq", crash.seq));

    let mut result = CaseResult {
        crash_at: crash.seq,
        kind: Some(crash.kind),
        fault,
        outcome: Outcome::Recovered,
        stale_count,
        recovery_reads: 0,
        recovery_writes: 0,
        recovery_time_ns: 0,
        readback_checked: 0,
        detail: String::new(),
    };

    match recover_traced(&mut image, rec) {
        Err(RecoveryError::NotRecoverable(_)) => {
            result.outcome = Outcome::Unrecoverable;
            result.detail = "scheme has no recovery path".into();
        }
        Err(RecoveryError::AttackDetected { .. }) => {
            result.outcome = Outcome::DetectedTamper;
            result.detail = "recovery verification (cache-tree root) refused the image".into();
        }
        Ok(report) => {
            result.recovery_reads = report.nvm_reads;
            result.recovery_writes = report.nvm_writes;
            result.recovery_time_ns = report.recovery_time_ns;
            let (outcome, checked, detail) = readback_outcome(&image, cfg, &committed);
            result.outcome = outcome;
            result.readback_checked = checked;
            result.detail = detail;
        }
    }
    // Stamp the verdict after the modeled recovery window so it closes
    // out the timeline.
    rec.set_now(now_ps + result.recovery_time_ns * star_nvm::PS_PER_NS);
    rec.instant(
        TraceCategory::Fault,
        result.outcome.label(),
        ("checked", result.readback_checked as u64),
    );
    result
}

/// Boots a fresh engine from the recovered image and reads committed
/// lines back through the full verify-and-decrypt path.
fn readback_outcome(
    image: &CrashImage,
    cfg: &SecureMemConfig,
    committed: &BTreeMap<u64, u64>,
) -> (Outcome, usize, String) {
    let mut resumed = SecureMemory::resume_from_image(image, cfg.clone());
    let lines: Vec<(u64, u64)> = sample_lines(committed);
    let mut checked = 0;
    for &(line, want) in &lines {
        let got = catch_quiet(|| resumed.read_data(line));
        checked += 1;
        match got {
            Err(_) => {
                return (
                    Outcome::DetectedTamper,
                    checked,
                    format!("integrity verification rejected readback of line {line}"),
                );
            }
            Ok(got) if got != want => {
                return (
                    Outcome::SilentCorruption,
                    checked,
                    format!("line {line} read back {got}, committed value was {want}"),
                );
            }
            Ok(_) => {}
        }
    }
    (
        Outcome::Recovered,
        checked,
        format!("{checked} committed lines verified and matched"),
    )
}

/// All committed lines when few; otherwise a deterministic stride sample
/// that keeps the extremes.
fn sample_lines(committed: &BTreeMap<u64, u64>) -> Vec<(u64, u64)> {
    let all: Vec<(u64, u64)> = committed.iter().map(|(&l, &v)| (l, v)).collect();
    if all.len() <= MAX_READBACK_LINES {
        return all;
    }
    let stride = all.len().div_ceil(MAX_READBACK_LINES);
    let mut picked: Vec<(u64, u64)> = all.iter().copied().step_by(stride).collect();
    if picked.last() != all.last() {
        picked.push(*all.last().expect("non-empty"));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pp(seq: u64, kind: PersistPointKind) -> PersistPoint {
        PersistPoint { seq, kind }
    }

    #[test]
    fn oracle_takes_last_commit_at_or_before_point() {
        let schedule = vec![
            pp(
                1,
                PersistPointKind::DataLineCommit {
                    line: 5,
                    version: 10,
                },
            ),
            pp(2, PersistPointKind::NodeWriteback { flat: 0 }),
            pp(
                3,
                PersistPointKind::DataLineCommit {
                    line: 5,
                    version: 11,
                },
            ),
            pp(
                4,
                PersistPointKind::DataLineCommit {
                    line: 6,
                    version: 3,
                },
            ),
        ];
        let at2 = committed_versions(&schedule, 2);
        assert_eq!(at2.get(&5), Some(&10));
        assert_eq!(at2.get(&6), None);
        let at4 = committed_versions(&schedule, 4);
        assert_eq!(at4.get(&5), Some(&11));
        assert_eq!(at4.get(&6), Some(&3));
    }

    #[test]
    fn sampling_keeps_extremes_and_bounds() {
        let big: BTreeMap<u64, u64> = (0..5_000u64).map(|i| (i, i * 2)).collect();
        let s = sample_lines(&big);
        assert!(s.len() <= MAX_READBACK_LINES + 1);
        assert_eq!(s.first(), Some(&(0, 0)));
        assert_eq!(s.last(), Some(&(4_999, 9_998)));
    }
}
