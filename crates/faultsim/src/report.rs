//! Machine-readable exploration reports.
//!
//! JSON is emitted by hand through the shared report module
//! (`star_core::report`, which also defines the schema version and the
//! `RunReport` serialization); the schema is flat and stable:
//!
//! ```json
//! {
//!   "schema_version": 2, "kind": "explore-report",
//!   "scheme": "star", "workload": "array", "ops": 500, "seed": 42,
//!   "fault": "crash-only", "total_points": 1234, "exhaustive": true,
//!   "outcomes": { "recovered": 1230, "detected-tamper": 4,
//!                 "silent-corruption": 0, "unrecoverable": 0,
//!                 "not-reached": 0, "skipped": 0 },
//!   "cases": [ { "crash_at": 1, "kind": "data-line-commit",
//!                "outcome": "recovered", "stale": 3, "reads": 31,
//!                "writes": 3, "time_ns": 3400, "checked": 1,
//!                "detail": "..." } ]
//! }
//! ```

use crate::case::{kind_label, CaseResult, Outcome};
use crate::fault::FaultKind;
use crate::scheme_label;
use star_core::report::{json_str, schema_preamble};
use star_core::SchemeKind;
use std::fmt::Write as _;

/// Everything one [`explore`](fn@crate::explore) run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Label of the workload that drove the engine — a
    /// [`WorkloadKind`](star_workloads::WorkloadKind) label for named
    /// workloads, or the caller-supplied (possibly runtime-built, e.g.
    /// per-shard or per-tenant) label of a factory driver.
    pub workload: String,
    /// Operations per replay.
    pub ops: usize,
    /// Workload seed.
    pub seed: u64,
    /// Fault injected at every explored point.
    pub fault: FaultKind,
    /// Length of the full persist schedule.
    pub total_points: u64,
    /// Whether every schedule point was crashed on.
    pub exhaustive: bool,
    /// One result per explored point, in schedule order.
    pub cases: Vec<CaseResult>,
}

impl ExploreReport {
    /// Number of cases with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == outcome).count()
    }

    /// The cases classified as silent corruption — the ones that must
    /// not exist for recoverable schemes under the paper's fault model.
    pub fn silent_corruptions(&self) -> Vec<&CaseResult> {
        self.cases
            .iter()
            .filter(|c| c.outcome == Outcome::SilentCorruption)
            .collect()
    }

    /// `true` when no explored case was silently corrupted.
    pub fn clean(&self) -> bool {
        self.silent_corruptions().is_empty()
    }

    /// Fixed-width summary table for terminals.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault sweep: scheme={} workload={} ops={} seed={} fault={}",
            scheme_label(self.scheme),
            self.workload,
            self.ops,
            self.seed,
            self.fault
        );
        let _ = writeln!(
            out,
            "persist points: {} total, {} explored ({})",
            self.total_points,
            self.cases.len(),
            if self.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        );
        let _ = writeln!(out, "{:<20} {:>8}", "outcome", "cases");
        for outcome in Outcome::ALL {
            let n = self.count(outcome);
            if n > 0 || matches!(outcome, Outcome::Recovered | Outcome::SilentCorruption) {
                let _ = writeln!(out, "{:<20} {:>8}", outcome.label(), n);
            }
        }
        for case in self.silent_corruptions() {
            let _ = writeln!(
                out,
                "SILENT at point {} ({}): {}",
                case.crash_at,
                case.kind.map(kind_label).unwrap_or("?"),
                case.detail
            );
        }
        out
    }

    /// The full report as a JSON object (schema in the module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&schema_preamble("explore-report"));
        let _ = write!(
            out,
            "\"scheme\":{},\"workload\":{},\"ops\":{},\"seed\":{},\"fault\":{},",
            json_str(scheme_label(self.scheme)),
            json_str(&self.workload),
            self.ops,
            self.seed,
            json_str(self.fault.label())
        );
        let _ = write!(
            out,
            "\"total_points\":{},\"exhaustive\":{},",
            self.total_points, self.exhaustive
        );
        out.push_str("\"outcomes\":{");
        for (i, outcome) in Outcome::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_str(outcome.label()), self.count(outcome));
        }
        out.push_str("},\"cases\":[");
        for (i, case) in self.cases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"crash_at\":{},\"kind\":{},\"fault\":{},\"outcome\":{},\"stale\":{},\
                 \"reads\":{},\"writes\":{},\"time_ns\":{},\"checked\":{},\"detail\":{}}}",
                case.crash_at,
                case.kind
                    .map_or("null".to_string(), |k| json_str(kind_label(k))),
                json_str(case.fault.label()),
                json_str(case.outcome.label()),
                case.stale_count,
                case.recovery_reads,
                case.recovery_writes,
                case.recovery_time_ns,
                case.readback_checked,
                json_str(&case.detail)
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ExploreReport {
        ExploreReport {
            scheme: SchemeKind::Star,
            workload: "array".into(),
            ops: 10,
            seed: 1,
            fault: FaultKind::CrashOnly,
            total_points: 2,
            exhaustive: true,
            cases: vec![CaseResult {
                crash_at: 1,
                kind: Some(star_core::persist::PersistPointKind::DataLineCommit {
                    line: 0,
                    version: 1,
                }),
                fault: FaultKind::CrashOnly,
                outcome: Outcome::Recovered,
                stale_count: 1,
                recovery_reads: 11,
                recovery_writes: 1,
                recovery_time_ns: 1200,
                readback_checked: 1,
                detail: "1 committed lines verified and matched".into(),
            }],
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = tiny_report().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"outcomes\":{\"recovered\":1"));
        assert!(j.contains("\"kind\":\"data-line-commit\""));
    }

    #[test]
    fn json_carries_schema_version_and_kind() {
        let j = tiny_report().to_json();
        assert!(j.starts_with(&format!(
            "{{\"schema_version\":{},\"kind\":\"explore-report\",",
            star_core::SCHEMA_VERSION
        )));
    }

    #[test]
    fn summary_mentions_counts() {
        let table = tiny_report().summary_table();
        assert!(table.contains("recovered"));
        assert!(table.contains("silent-corruption"));
        assert!(table.contains("exhaustive"));
    }
}
