//! Acceptance coverage for the service simulator (ISSUE 6):
//!
//! * a multi-hour simulated run with ≥2 mid-stream power failures
//!   completes for every engine scheme *and* Triad, reporting
//!   p50/p99/p999 latency and nonzero unavailability;
//! * the scheme×scenario grid is byte-identical at `threads` 1/2/4.

use star_serve::{
    run_grid, simulate, standard_scenarios, standard_scenarios_at, ServeConfig, ServeScheme,
};

/// Multi-hour horizon, two crashes, every backend.
#[test]
fn multi_hour_run_completes_for_every_scheme() {
    let cfg = ServeConfig {
        seed: 7,
        ..ServeConfig::quick(3 * 3600)
    };
    let scenario = &standard_scenarios_at(&cfg, 0.3)[0];
    assert!(scenario.crash_plan.len() >= 2);
    for scheme in ServeScheme::ALL {
        let out = simulate(scheme, scenario, &cfg);
        let label = scheme.label();
        assert!(out.requests > 1_000, "{label}: multi-hour load served");
        let (p50, p99, p999) = (
            out.latency.quantile(0.50),
            out.latency.quantile(0.99),
            out.latency.quantile(0.999),
        );
        assert!(p50 > 0 && p50 <= p99 && p99 <= p999, "{label}: quantiles");
        assert!(
            out.unavailability_ns() > 0,
            "{label}: two crashes must cost dead time"
        );
        assert_eq!(out.downtime.count(), 2, "{label}: both crashes fired");
        assert_eq!(
            out.requests,
            out.tenants.iter().map(|t| t.requests).sum::<u64>(),
            "{label}: tenant counts sum to the total"
        );
        assert_eq!(
            out.unavailability_ns(),
            out.downtime
                .spans()
                .iter()
                .map(|s| s.total_ns())
                .sum::<u64>(),
            "{label}: unavailability is exactly the sum of its spans"
        );
    }
}

/// The recovery hierarchy the paper predicts, as downtime: STAR's
/// dirty-set recovery beats Triad's whole-memory counter scan, which
/// beats WB's full rebuild; Strict pays only the reboot.
#[test]
fn downtime_ordering_matches_the_paper() {
    let cfg = ServeConfig {
        seed: 11,
        ..ServeConfig::quick(600)
    };
    let scenario = &standard_scenarios(&cfg)[0];
    let recovery_of = |scheme| {
        let out = simulate(scheme, scenario, &cfg);
        out.downtime
            .spans()
            .iter()
            .map(|s| s.recovery_ns)
            .sum::<u64>()
    };
    let strict = recovery_of(ServeScheme::Strict);
    let star = recovery_of(ServeScheme::Star);
    let triad = recovery_of(ServeScheme::Triad);
    let wb = recovery_of(ServeScheme::Wb);
    assert_eq!(strict, 0, "strict has nothing stale");
    assert!(star > 0, "STAR restores its dirty set");
    assert!(
        star < triad,
        "dirty-set recovery beats the full counter scan"
    );
    assert!(triad < wb, "counter scan beats the full rebuild");
}

/// Grid bytes are a pure function of the job list: any thread count
/// reproduces the serial sweep exactly.
#[test]
fn serve_grid_is_byte_identical_across_thread_counts() {
    let base = ServeConfig {
        seed: 42,
        ..ServeConfig::quick(20)
    };
    let scenarios = standard_scenarios(&base);
    let json_at = |threads: usize| {
        let cfg = ServeConfig {
            threads,
            ..base.clone()
        };
        run_grid(&cfg, &scenarios).to_json()
    };
    let serial = json_at(1);
    assert_eq!(serial, json_at(2), "threads 2 must reproduce serial bytes");
    assert_eq!(serial, json_at(4), "threads 4 must reproduce serial bytes");
    assert_eq!(
        serial,
        json_at(1),
        "repeated runs are deterministic end to end"
    );
}
