//! star-serve: a long-running secure-KV service simulation.
//!
//! The paper evaluates STAR on fixed-length kernels, but its headline
//! claim — fast recovery with few extra writes — only matters in a
//! *service* context where recovery time is user-visible downtime. This
//! crate promotes the KV-store example into an open-loop, discrete-event
//! service simulator:
//!
//! * **Tenants** ([`scenario`]) offer zipfian GET/PUT mixes at
//!   individually shaped rates — diurnal sinusoids, burst storms — via
//!   the nonhomogeneous Poisson arrival streams of
//!   [`star_workloads::arrival`].
//! * **The front-end** ([`kv`]) serves each request against a secure
//!   memory backend (the four engine schemes, or Triad-NVM) on simulated
//!   time: a request's service time is the backend's modeled clock delta,
//!   and a single-server FIFO queue turns service time plus load into a
//!   real per-request latency distribution.
//! * **The crash plan** injects power failures mid-stream; each failure
//!   runs the scheme's `recover()` on the same clock, and the resulting
//!   dead time lands in a [`star_core::DowntimeLedger`] as user-visible
//!   unavailability. Requests arriving during an outage queue up behind
//!   it, so schemes with slow recovery pay twice: in downtime seconds
//!   *and* in post-recovery tail latency.
//! * **The report** ([`report`]) emits the schema-v6 `serve` document —
//!   per-scheme/per-tenant p50/p99/p999 latency (via the shared
//!   [`star_trace::Log2Hist`] quantiles), goodput, unavailability, the
//!   recovery-time breakdown of every outage, and wear/energy over the
//!   whole horizon — with scheme×scenario grids dispatched over
//!   [`star_sweep`], so report bytes are identical at any thread count.
//! * **The sharded backend** ([`shard`]) partitions the store into
//!   lanes (independent security-metadata domains, star-shard's unit of
//!   crash blast radius): tenants are placed on lanes, each lane runs
//!   its own queue and its own crash/recover, and the schema-v6
//!   `serve-shard` document carries per-lane request and downtime
//!   ledgers — hot-shard and skewed-placement scenarios included.
//!
//! ```
//! use star_serve::{simulate, standard_scenarios, ServeConfig, ServeScheme};
//!
//! let cfg = ServeConfig::quick(5); // 5 simulated seconds
//! let scenario = &standard_scenarios(&cfg)[0];
//! let out = simulate(ServeScheme::Star, scenario, &cfg);
//! assert_eq!(out.requests, out.tenants.iter().map(|t| t.requests).sum());
//! assert_eq!(out.unavailability_ns(), out.downtime.total_ns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kv;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod sim;

pub use kv::{HorizonTotals, SecureKv};
pub use report::{run_grid, ServeGridReport};
pub use scenario::{
    standard_scenarios, standard_scenarios_at, Scenario, ServeConfig, ServeScheme, TenantSpec,
};
pub use shard::{
    run_sharded_grid, shard_scenarios, simulate_sharded, LaneServeStats, ShardScenario,
    ShardServeGridReport, ShardServeOutcome,
};
pub use sim::{simulate, ServeOutcome, TenantStats};
