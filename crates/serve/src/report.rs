//! The schema-v6 `serve` report: scheme×scenario grids over
//! [`star_sweep`], serialized with the shared byte-stable JSON
//! conventions of [`star_core::report`].

use crate::scenario::{Scenario, ServeConfig, ServeScheme};
use crate::sim::{simulate, ServeOutcome};
use star_core::report::{json_f64, json_str, schema_preamble, wear_json};
use star_prof::cause::CAUSE_LABELS;
use star_sweep::SweepKey;
use std::fmt::Write as _;

/// A full scheme×scenario service grid.
#[derive(Debug, Clone)]
pub struct ServeGridReport {
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
    /// Master seed.
    pub seed: u64,
    /// One outcome per (scenario, scheme), scenario-major, in
    /// [`ServeScheme::ALL`] order within a scenario.
    pub cells: Vec<ServeOutcome>,
}

/// Runs every backend through every scenario, dispatched over the
/// deterministic sweep runner: the cell order — and therefore the
/// report bytes — is a pure function of the job list, identical at any
/// `cfg.threads`.
pub fn run_grid(cfg: &ServeConfig, scenarios: &[Scenario]) -> ServeGridReport {
    let mut jobs = Vec::new();
    let mut rank = 0u64;
    for (si, sc) in scenarios.iter().enumerate() {
        for scheme in ServeScheme::ALL {
            jobs.push((
                SweepKey {
                    rank,
                    workload: sc.name,
                    scheme: scheme.label(),
                    seed: cfg.seed,
                    case: si as u64,
                },
                (scheme, si),
            ));
            rank += 1;
        }
    }
    let cells = star_sweep::run_merged(cfg.threads, jobs, |_, &(scheme, si)| {
        simulate(scheme, &scenarios[si], cfg)
    });
    ServeGridReport {
        horizon_ns: cfg.horizon_ns,
        seed: cfg.seed,
        cells,
    }
}

fn cell_json(out: &ServeOutcome) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"scheme\":{},\"scenario\":{},\"requests\":{},\"completed_in_horizon\":{},\
         \"goodput_rps\":{},",
        json_str(out.scheme.label()),
        json_str(out.scenario),
        out.requests,
        out.completed_in_horizon,
        json_f64(out.goodput_rps())
    );
    let _ = write!(
        s,
        "\"latency_ns\":{{\"mean\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}},",
        json_f64(out.latency.mean()),
        out.latency.quantile(0.50),
        out.latency.quantile(0.99),
        out.latency.quantile(0.999),
        out.latency.max()
    );
    s.push_str("\"tenants\":[");
    for (i, t) in out.tenants.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":{},\"requests\":{},\"reads\":{},\"writes\":{},\"p50\":{},\"p99\":{},\
             \"p999\":{}}}",
            json_str(t.name),
            t.requests,
            t.reads,
            t.writes,
            t.latency.quantile(0.50),
            t.latency.quantile(0.99),
            t.latency.quantile(0.999)
        );
    }
    let _ = write!(
        s,
        "],\"crashes\":{},\"unavailability_ns\":{},\"delayed_by_downtime\":{},",
        out.downtime.count(),
        out.unavailability_ns(),
        out.delayed_by_downtime
    );
    s.push_str("\"downtime_spans\":[");
    for (i, sp) in out.downtime.spans().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"at_ns\":{},\"reboot_ns\":{},\"recovery_ns\":{},\"total_ns\":{},\
             \"stale_nodes\":{},\"nvm_reads\":{},\"nvm_writes\":{}}}",
            sp.at_ns,
            sp.reboot_ns,
            sp.recovery_ns,
            sp.total_ns(),
            sp.stale_nodes,
            sp.nvm_reads,
            sp.nvm_writes
        );
    }
    let _ = write!(
        s,
        "],\"nvm\":{{\"reads\":{},\"writes\":{}}},\"energy\":{{\"read_pj\":{},\"write_pj\":{},\
         \"total_pj\":{}}},",
        out.totals.nvm_reads,
        out.totals.nvm_writes,
        out.totals.energy_read_pj,
        out.totals.energy_write_pj,
        out.totals.energy_pj()
    );
    s.push_str("\"writes_by_cause\":{");
    for (i, (label, count)) in CAUSE_LABELS
        .into_iter()
        .zip(out.totals.writes_by_cause)
        .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{label}\":{count}");
    }
    s.push_str("},\"wear\":");
    match &out.totals.wear {
        Some(w) => s.push_str(&wear_json(w)),
        None => s.push_str("null"),
    }
    s.push('}');
    s
}

impl ServeGridReport {
    /// The grid as one versioned JSON document (kind `serve`).
    ///
    /// Byte-stable: field order is fixed, floats go through
    /// [`json_f64`], and nothing thread- or wall-clock-dependent is
    /// encoded.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&schema_preamble("serve"));
        let _ = write!(
            s,
            "\"horizon_ns\":{},\"seed\":{},\"cells\":[",
            self.horizon_ns, self.seed
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&cell_json(cell));
        }
        s.push_str("]}");
        s
    }

    /// A human-readable availability/latency table, one row per cell.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<8} {:<8} {:>9} {:>12} {:>12} {:>12} {:>8} {:>12} {:>10}",
            "scheme",
            "scenario",
            "requests",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "crashes",
            "unavail_ms",
            "goodput"
        );
        for c in &self.cells {
            let _ = writeln!(
                s,
                "{:<8} {:<8} {:>9} {:>12} {:>12} {:>12} {:>8} {:>12.3} {:>10.1}",
                c.scheme.label(),
                c.scenario,
                c.requests,
                c.latency.quantile(0.50),
                c.latency.quantile(0.99),
                c.latency.quantile(0.999),
                c.downtime.count(),
                c.unavailability_ns() as f64 / 1e6,
                c.goodput_rps()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::standard_scenarios;

    #[test]
    fn grid_json_is_versioned_and_balanced() {
        let cfg = ServeConfig {
            threads: 2,
            ..ServeConfig::quick(3)
        };
        let grid = run_grid(&cfg, &standard_scenarios(&cfg));
        assert_eq!(grid.cells.len(), 3 * ServeScheme::ALL.len());
        let j = grid.to_json();
        assert!(j.starts_with(&format!(
            "{{\"schema_version\":{},\"kind\":\"serve\",",
            star_core::SCHEMA_VERSION
        )));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"scheme\":\"triad\""));
        assert!(!j.contains("threads"), "thread count must not leak");
        let table = grid.to_table();
        assert_eq!(table.lines().count(), 1 + grid.cells.len());
    }
}
