//! Service schemes, tenant populations and crash plans.

use star_core::SecureMemConfig;
use star_workloads::LoadShape;

/// Nanoseconds per simulated second.
pub const NS_PER_S: u64 = 1_000_000_000;

/// The backends the service can run on: the four engine schemes plus the
/// Triad-NVM baseline (which has its own controller model and therefore
/// sits outside [`star_core::SchemeKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeScheme {
    /// Write-back baseline (not recoverable: a crash forces a modeled
    /// full rebuild and loses the store contents).
    Wb,
    /// Strict write-through persistence.
    Strict,
    /// Anubis shadow-table scheme.
    Anubis,
    /// The paper's STAR scheme.
    Star,
    /// Triad-NVM on a Bonsai Merkle tree.
    Triad,
}

impl ServeScheme {
    /// Every backend, in report order.
    pub const ALL: [ServeScheme; 5] = [
        ServeScheme::Wb,
        ServeScheme::Strict,
        ServeScheme::Anubis,
        ServeScheme::Star,
        ServeScheme::Triad,
    ];

    /// Short machine-readable label, extending
    /// [`star_core::SchemeKind::label`] with `triad`.
    pub fn label(self) -> &'static str {
        match self {
            ServeScheme::Wb => "wb",
            ServeScheme::Strict => "strict",
            ServeScheme::Anubis => "anubis",
            ServeScheme::Star => "star",
            ServeScheme::Triad => "triad",
        }
    }

    /// The engine scheme this maps to, or `None` for Triad.
    pub fn engine_kind(self) -> Option<star_core::SchemeKind> {
        match self {
            ServeScheme::Wb => Some(star_core::SchemeKind::WriteBack),
            ServeScheme::Strict => Some(star_core::SchemeKind::Strict),
            ServeScheme::Anubis => Some(star_core::SchemeKind::Anubis),
            ServeScheme::Star => Some(star_core::SchemeKind::Star),
            ServeScheme::Triad => None,
        }
    }
}

/// One tenant population: an arrival process plus an access mix.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant label in reports.
    pub name: &'static str,
    /// Base offered load, requests per simulated second.
    pub rate_per_s: f64,
    /// Zipfian skew of the tenant's key popularity, in `(0, 1)`.
    pub zipf_theta: f64,
    /// Size of the tenant's key space (cache lines).
    pub keys: u64,
    /// First line of the tenant's key range.
    pub key_base: u64,
    /// Fraction of requests that are GETs (the rest are durable PUTs).
    pub read_fraction: f64,
    /// Rate modulation over the horizon.
    pub shape: LoadShape,
}

/// A named service scenario: tenants, power-failure plan, reboot cost.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario label in reports (doubles as the sweep-key workload).
    pub name: &'static str,
    /// The tenant populations offering load.
    pub tenants: Vec<TenantSpec>,
    /// Service-clock times (ns) at which power fails.
    pub crash_plan: Vec<u64>,
    /// Fixed platform bring-up cost added to every outage (firmware +
    /// controller re-init), so even a zero-recovery scheme has nonzero
    /// unavailability.
    pub reboot_ns: u64,
}

/// Shared simulation parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated horizon in ns; arrivals stop here, the queue drains.
    pub horizon_ns: u64,
    /// Master seed; every tenant stream derives from it.
    pub seed: u64,
    /// Backend geometry and device model (Triad adopts `data_lines`,
    /// `nvm` and `key_seed` from it).
    pub mem: SecureMemConfig,
    /// Worker threads for grid dispatch — never encoded in the report,
    /// which is byte-identical at any value.
    pub threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            horizon_ns: 3600 * NS_PER_S,
            seed: 42,
            // 256 MB of protected data: big enough that Triad's
            // whole-memory counter scan and WB's full rebuild visibly
            // dwarf STAR's dirty-set recovery, small enough to simulate.
            mem: SecureMemConfig::builder()
                .data_lines((256 << 20) / 64)
                .build()
                .expect("default serve geometry is consistent"),
            threads: 1,
        }
    }
}

impl ServeConfig {
    /// A small, fast configuration for tests and examples: `horizon_s`
    /// simulated seconds over the engine's 1 MB `small()` geometry.
    pub fn quick(horizon_s: u64) -> Self {
        Self {
            horizon_ns: horizon_s * NS_PER_S,
            mem: SecureMemConfig::small(),
            ..Self::default()
        }
    }
}

/// The standard scheme×scenario grid's scenarios, scaled to the
/// config's horizon and key space: a steady two-tenant mix, a diurnal
/// three-tenant mix, and a burst-storm mix. Every scenario injects two
/// mid-stream power failures.
pub fn standard_scenarios(cfg: &ServeConfig) -> Vec<Scenario> {
    standard_scenarios_at(cfg, 2.0)
}

/// [`standard_scenarios`] with an explicit base arrival rate
/// (requests per simulated second for the busiest tenant).
pub fn standard_scenarios_at(cfg: &ServeConfig, base_rate: f64) -> Vec<Scenario> {
    let h = cfg.horizon_ns;
    let h_s = h as f64 / NS_PER_S as f64;
    let dl = cfg.mem.data_lines;
    assert!(dl >= 8, "key space too small for the standard tenants");
    let reboot_ns = NS_PER_S / 1_000; // 1 ms platform bring-up
    vec![
        Scenario {
            name: "steady",
            tenants: vec![
                TenantSpec {
                    name: "hot",
                    rate_per_s: base_rate,
                    zipf_theta: 0.99,
                    keys: dl / 8,
                    key_base: 0,
                    read_fraction: 0.5,
                    shape: LoadShape::flat(),
                },
                TenantSpec {
                    name: "scan",
                    rate_per_s: base_rate * 0.5,
                    zipf_theta: 0.6,
                    keys: dl / 2,
                    key_base: dl / 2,
                    read_fraction: 0.9,
                    shape: LoadShape::flat(),
                },
            ],
            crash_plan: vec![h / 10 * 4, h / 10 * 8],
            reboot_ns,
        },
        Scenario {
            name: "diurnal",
            tenants: vec![
                TenantSpec {
                    name: "day",
                    rate_per_s: base_rate,
                    zipf_theta: 0.9,
                    keys: dl / 8,
                    key_base: 0,
                    read_fraction: 0.7,
                    shape: LoadShape::diurnal(0.8, h_s / 2.0),
                },
                TenantSpec {
                    name: "night",
                    rate_per_s: base_rate * 0.6,
                    zipf_theta: 0.75,
                    keys: dl / 4,
                    key_base: dl / 4,
                    read_fraction: 0.3,
                    shape: LoadShape::diurnal(0.6, h_s),
                },
                TenantSpec {
                    name: "batch",
                    rate_per_s: base_rate * 0.3,
                    zipf_theta: 0.5,
                    keys: dl / 4,
                    key_base: dl / 2,
                    read_fraction: 0.1,
                    shape: LoadShape::flat(),
                },
            ],
            crash_plan: vec![h / 100 * 35, h / 100 * 75],
            reboot_ns,
        },
        Scenario {
            name: "burst",
            tenants: vec![
                TenantSpec {
                    name: "storm",
                    rate_per_s: base_rate,
                    zipf_theta: 0.95,
                    keys: dl / 8,
                    key_base: 0,
                    read_fraction: 0.4,
                    shape: LoadShape::bursty(6.0, h_s / 10.0, h_s / 60.0),
                },
                TenantSpec {
                    name: "base",
                    rate_per_s: base_rate * 0.7,
                    zipf_theta: 0.7,
                    keys: dl / 4,
                    key_base: dl / 2,
                    read_fraction: 0.8,
                    shape: LoadShape::flat(),
                },
            ],
            crash_plan: vec![h / 10 * 5, h / 10 * 9],
            reboot_ns,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_engine_mapping_is_total() {
        let mut labels: Vec<_> = ServeScheme::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
        for s in ServeScheme::ALL {
            assert_eq!(s.engine_kind().is_none(), s == ServeScheme::Triad);
        }
    }

    #[test]
    fn standard_scenarios_fit_the_key_space_and_crash_twice() {
        let cfg = ServeConfig::quick(60);
        for sc in standard_scenarios(&cfg) {
            assert!(sc.crash_plan.len() >= 2, "{}", sc.name);
            for c in &sc.crash_plan {
                assert!(
                    *c > 0 && *c < cfg.horizon_ns,
                    "{} crash mid-stream",
                    sc.name
                );
            }
            for t in &sc.tenants {
                assert!(t.keys > 0);
                assert!(
                    t.key_base + t.keys <= cfg.mem.data_lines,
                    "{}:{} overflows the data region",
                    sc.name,
                    t.name
                );
            }
        }
    }
}
