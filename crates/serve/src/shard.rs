//! The sharded secure-KV backend: lane-partitioned stores with
//! independent queues, so a power failure's blast radius is one lane.
//!
//! [`simulate_sharded`] runs one [`SecureKv`] per **lane** (the star-shard
//! notion: a fixed population of independent security-metadata domains,
//! see DESIGN.md §13). Tenants are *placed* on lanes by the scenario;
//! each lane is its own single-server FIFO queue over its own backend
//! clock, so a hot lane queues while cold lanes stay idle, and a crash
//! on one lane recovers — via the scheme's own recovery path — while
//! every other lane keeps serving. The per-lane request and downtime
//! ledgers land in the schema-v6 `serve-shard` report.
//!
//! Two standard scenarios probe the placements that matter:
//!
//! * **hot-shard** — one tenant per lane, but lane 0's tenant offers a
//!   multiple of everyone else's load at high skew; crashes hit the hot
//!   lane and a cold lane, showing recovery cost scales with the lane's
//!   own dirty set, not the fleet's.
//! * **skew-place** — the *same* tenant population packed two-per-lane
//!   onto the lower half of the lanes, leaving the upper half idle; the
//!   queueing penalty of bad placement is then directly comparable
//!   against hot-shard's spread placement.

use crate::kv::{HorizonTotals, SecureKv};
use crate::scenario::{ServeConfig, ServeScheme, TenantSpec, NS_PER_S};
use crate::sim::{generate_requests, TenantStats};
use star_core::report::{json_f64, json_str, schema_preamble};
use star_core::DowntimeLedger;
use star_sweep::SweepKey;
use star_trace::Log2Hist;
use star_workloads::LoadShape;
use std::fmt::Write as _;

/// A lane-placed service scenario: a tenant population, a tenant→lane
/// placement, and a per-lane crash plan.
#[derive(Debug, Clone)]
pub struct ShardScenario {
    /// Scenario label in reports (doubles as the sweep-key workload).
    pub name: &'static str,
    /// Number of lanes (independent stores).
    pub lanes: usize,
    /// The tenant populations offering load.
    pub tenants: Vec<TenantSpec>,
    /// `placement[t]` is the lane serving tenant `t`.
    pub placement: Vec<usize>,
    /// Per-lane power failures: `(lane, at_ns)` on the service clock.
    pub crash_plan: Vec<(usize, u64)>,
    /// Fixed platform bring-up cost added to every outage.
    pub reboot_ns: u64,
}

/// One lane's service statistics over the horizon.
#[derive(Debug, Clone)]
pub struct LaneServeStats {
    /// The lane.
    pub lane: u32,
    /// Requests this lane served.
    pub requests: u64,
    /// Requests whose completion fell inside the horizon.
    pub completed_in_horizon: u64,
    /// Requests that arrived during one of this lane's outages.
    pub delayed_by_downtime: u64,
    /// Per-request latency on this lane, ns.
    pub latency: Log2Hist,
    /// This lane's outages, in injection order.
    pub downtime: DowntimeLedger,
    /// This lane's device totals over the horizon.
    pub totals: HorizonTotals,
}

/// The outcome of one scheme×scenario sharded service run.
#[derive(Debug, Clone)]
pub struct ShardServeOutcome {
    /// Backend scheme every lane runs.
    pub scheme: ServeScheme,
    /// Scenario label.
    pub scenario: &'static str,
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
    /// Tenant→lane placement the scenario ran with.
    pub placement: Vec<usize>,
    /// All-lane per-request latency, ns.
    pub latency: Log2Hist,
    /// Per-tenant breakdown, in scenario order.
    pub tenants: Vec<TenantStats>,
    /// Per-lane breakdown, in lane order.
    pub lanes: Vec<LaneServeStats>,
}

impl ShardServeOutcome {
    /// Requests served across all lanes.
    pub fn requests(&self) -> u64 {
        self.lanes.iter().map(|l| l.requests).sum()
    }

    /// Completions inside the horizon across all lanes.
    pub fn completed_in_horizon(&self) -> u64 {
        self.lanes.iter().map(|l| l.completed_in_horizon).sum()
    }

    /// Lane-seconds of unavailability: the sum of every lane's dead
    /// time. A single-lane outage leaves the other lanes serving, which
    /// is exactly the availability argument for sharding.
    pub fn unavailability_ns(&self) -> u64 {
        self.lanes.iter().map(|l| l.downtime.total_ns()).sum()
    }

    /// Completions per simulated second, fleet-wide.
    pub fn goodput_rps(&self) -> f64 {
        self.completed_in_horizon() as f64 / (self.horizon_ns as f64 / 1e9)
    }
}

/// Runs one scheme through one lane-placed scenario.
///
/// Each lane is an independent single-server queue over its own
/// [`SecureKv`]; requests route by `scenario.placement[tenant]` and
/// never interact across lanes, so any one lane's statistics are a pure
/// function of that lane's own traffic and crash plan. Deterministic in
/// `(scheme, scenario, cfg.seed, cfg.horizon_ns, cfg.mem)`;
/// `cfg.threads` plays no role here.
///
/// # Panics
///
/// Panics if the placement does not cover every tenant or names a lane
/// out of range.
pub fn simulate_sharded(
    scheme: ServeScheme,
    scenario: &ShardScenario,
    cfg: &ServeConfig,
) -> ShardServeOutcome {
    assert_eq!(
        scenario.placement.len(),
        scenario.tenants.len(),
        "placement must cover every tenant"
    );
    assert!(
        scenario.placement.iter().all(|&l| l < scenario.lanes),
        "placement names a lane out of range"
    );
    let reqs = generate_requests(&scenario.tenants, cfg);

    struct Lane {
        kv: SecureKv,
        free_ns: u64,
        last_outage_end_ns: u64,
        crashes: Vec<u64>,
        crash_i: usize,
        stats: LaneServeStats,
    }
    let mut lanes: Vec<Lane> = (0..scenario.lanes)
        .map(|l| {
            let mut crashes: Vec<u64> = scenario
                .crash_plan
                .iter()
                .filter(|(lane, _)| *lane == l)
                .map(|&(_, at)| at)
                .collect();
            crashes.sort_unstable();
            Lane {
                kv: SecureKv::new(scheme, cfg.mem.clone()),
                free_ns: 0,
                last_outage_end_ns: 0,
                crashes,
                crash_i: 0,
                stats: LaneServeStats {
                    lane: l as u32,
                    requests: 0,
                    completed_in_horizon: 0,
                    delayed_by_downtime: 0,
                    latency: Log2Hist::new(),
                    downtime: DowntimeLedger::new(),
                    totals: HorizonTotals::default(),
                },
            }
        })
        .collect();
    let mut tenants: Vec<TenantStats> = scenario
        .tenants
        .iter()
        .map(|t| TenantStats {
            name: t.name,
            requests: 0,
            reads: 0,
            writes: 0,
            latency: Log2Hist::new(),
        })
        .collect();
    let mut latency = Log2Hist::new();
    let mut put_seq = 1u64;

    fn fire_crash(lane: &mut Lane, reboot_ns: u64, at_ns: u64) {
        let span = lane.kv.crash_recover(at_ns, reboot_ns);
        let outage_end = at_ns.max(lane.free_ns) + span.total_ns();
        lane.stats.downtime.push(span);
        lane.free_ns = lane.free_ns.max(outage_end);
        lane.last_outage_end_ns = outage_end;
    }

    for r in &reqs {
        let lane = &mut lanes[scenario.placement[r.tenant as usize]];
        // Fire this lane's power failures due before the request starts;
        // other lanes' failures wait for their own next request (or the
        // final drain) — lanes share no clock.
        while lane.crash_i < lane.crashes.len()
            && lane.crashes[lane.crash_i] <= lane.free_ns.max(r.at_ns)
        {
            fire_crash(lane, scenario.reboot_ns, lane.crashes[lane.crash_i]);
            lane.crash_i += 1;
        }
        let start_ns = lane.free_ns.max(r.at_ns);
        if r.at_ns < lane.last_outage_end_ns {
            lane.stats.delayed_by_downtime += 1;
        }
        let t0_ps = lane.kv.now_ps();
        let ts = &mut tenants[r.tenant as usize];
        if r.is_read {
            let _ = lane.kv.get(r.key);
            ts.reads += 1;
        } else {
            lane.kv.put(r.key, put_seq);
            put_seq += 1;
            ts.writes += 1;
        }
        let service_ns = (lane.kv.now_ps() - t0_ps).div_ceil(1000).max(1);
        let done_ns = start_ns + service_ns;
        let lat_ns = done_ns - r.at_ns;
        ts.requests += 1;
        ts.latency.observe(lat_ns);
        lane.stats.requests += 1;
        lane.stats.latency.observe(lat_ns);
        latency.observe(lat_ns);
        if done_ns <= cfg.horizon_ns {
            lane.stats.completed_in_horizon += 1;
        }
        lane.free_ns = done_ns;
    }
    // Power failures scheduled after a lane's last arrival still happen.
    for lane in &mut lanes {
        while lane.crash_i < lane.crashes.len() && lane.crashes[lane.crash_i] < cfg.horizon_ns {
            fire_crash(lane, scenario.reboot_ns, lane.crashes[lane.crash_i]);
            lane.crash_i += 1;
        }
    }

    ShardServeOutcome {
        scheme,
        scenario: scenario.name,
        horizon_ns: cfg.horizon_ns,
        placement: scenario.placement.clone(),
        latency,
        tenants,
        lanes: lanes
            .into_iter()
            .map(|lane| {
                let mut stats = lane.stats;
                stats.totals = lane.kv.finish();
                stats
            })
            .collect(),
    }
}

/// The standard sharded scenarios over `lanes` lanes: **hot-shard**
/// (one tenant per lane, lane 0 hot, crashes on the hot and a cold
/// lane) and **skew-place** (the same tenants packed two-per-lane onto
/// the lower lanes, upper lanes idle, same crash clock).
///
/// # Panics
///
/// Panics when `lanes < 2` (placement needs somewhere to skew to) or
/// the config's key space cannot fit one key range per tenant.
pub fn shard_scenarios(cfg: &ServeConfig, lanes: usize, base_rate: f64) -> Vec<ShardScenario> {
    assert!(lanes >= 2, "sharded scenarios need at least two lanes");
    let h = cfg.horizon_ns;
    let dl = cfg.mem.data_lines;
    assert!(
        dl >= 2 * lanes as u64,
        "key space too small for one range per lane"
    );
    let reboot_ns = NS_PER_S / 1_000; // 1 ms platform bring-up
    const NAMES: [&str; 8] = ["t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"];
    assert!(lanes <= NAMES.len(), "at most {} lanes", NAMES.len());
    // One tenant per lane; every tenant gets a disjoint key range so
    // packed placements never collide inside a shared store.
    let span = dl / lanes as u64;
    let tenants: Vec<TenantSpec> = (0..lanes)
        .map(|t| TenantSpec {
            name: NAMES[t],
            rate_per_s: if t == 0 { base_rate * 4.0 } else { base_rate },
            zipf_theta: if t == 0 { 0.99 } else { 0.7 },
            keys: span / 2,
            key_base: t as u64 * span,
            read_fraction: if t == 0 { 0.4 } else { 0.8 },
            shape: LoadShape::flat(),
        })
        .collect();
    let crash_plan = vec![(0, h / 10 * 4), (lanes - 1, h / 10 * 8)];
    vec![
        ShardScenario {
            name: "hot-shard",
            lanes,
            tenants: tenants.clone(),
            placement: (0..lanes).collect(),
            crash_plan: crash_plan.clone(),
            reboot_ns,
        },
        ShardScenario {
            name: "skew-place",
            lanes,
            tenants,
            // The same population packed two-per-lane onto the lower
            // half; the upper lanes sit idle.
            placement: (0..lanes).map(|t| t / 2).collect(),
            crash_plan,
            reboot_ns,
        },
    ]
}

/// A full scheme×scenario sharded service grid.
#[derive(Debug, Clone)]
pub struct ShardServeGridReport {
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
    /// Master seed.
    pub seed: u64,
    /// Lane count every cell ran with.
    pub lanes: u32,
    /// One outcome per (scenario, scheme), scenario-major, in
    /// [`ServeScheme::ALL`] order within a scenario.
    pub cells: Vec<ShardServeOutcome>,
}

/// Runs every backend through every sharded scenario, dispatched over
/// the deterministic sweep runner; the report bytes are identical at
/// any `cfg.threads`.
///
/// # Panics
///
/// Panics if the scenarios disagree on their lane count.
pub fn run_sharded_grid(cfg: &ServeConfig, scenarios: &[ShardScenario]) -> ShardServeGridReport {
    let lanes = scenarios.first().map_or(0, |sc| sc.lanes);
    assert!(
        scenarios.iter().all(|sc| sc.lanes == lanes),
        "every scenario in a grid must use the same lane count"
    );
    let mut jobs = Vec::new();
    let mut rank = 0u64;
    for (si, sc) in scenarios.iter().enumerate() {
        for scheme in ServeScheme::ALL {
            jobs.push((
                SweepKey {
                    rank,
                    workload: sc.name,
                    scheme: scheme.label(),
                    seed: cfg.seed,
                    case: si as u64,
                },
                (scheme, si),
            ));
            rank += 1;
        }
    }
    let cells = star_sweep::run_merged(cfg.threads, jobs, |_, &(scheme, si)| {
        simulate_sharded(scheme, &scenarios[si], cfg)
    });
    ShardServeGridReport {
        horizon_ns: cfg.horizon_ns,
        seed: cfg.seed,
        lanes: lanes as u32,
        cells,
    }
}

fn cell_json(out: &ShardServeOutcome) -> String {
    let mut s = String::from("{");
    let _ = write!(
        s,
        "\"scheme\":{},\"scenario\":{},\"requests\":{},\"completed_in_horizon\":{},\
         \"goodput_rps\":{},",
        json_str(out.scheme.label()),
        json_str(out.scenario),
        out.requests(),
        out.completed_in_horizon(),
        json_f64(out.goodput_rps())
    );
    let _ = write!(
        s,
        "\"latency_ns\":{{\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}},",
        out.latency.quantile(0.50),
        out.latency.quantile(0.99),
        out.latency.quantile(0.999),
        out.latency.max()
    );
    s.push_str("\"tenants\":[");
    for (i, t) in out.tenants.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":{},\"lane\":{},\"requests\":{},\"reads\":{},\"writes\":{},\
             \"p50\":{},\"p99\":{}}}",
            json_str(t.name),
            out.placement[i],
            t.requests,
            t.reads,
            t.writes,
            t.latency.quantile(0.50),
            t.latency.quantile(0.99)
        );
    }
    s.push_str("],\"lanes\":[");
    for (i, l) in out.lanes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"lane\":{},\"requests\":{},\"completed_in_horizon\":{},\
             \"delayed_by_downtime\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"crashes\":{},\
             \"unavailability_ns\":{},\"downtime_spans\":[",
            l.lane,
            l.requests,
            l.completed_in_horizon,
            l.delayed_by_downtime,
            l.latency.quantile(0.50),
            l.latency.quantile(0.99),
            l.latency.quantile(0.999),
            l.downtime.count(),
            l.downtime.total_ns()
        );
        for (j, sp) in l.downtime.spans().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"at_ns\":{},\"reboot_ns\":{},\"recovery_ns\":{},\"total_ns\":{},\
                 \"stale_nodes\":{},\"nvm_reads\":{},\"nvm_writes\":{}}}",
                sp.at_ns,
                sp.reboot_ns,
                sp.recovery_ns,
                sp.total_ns(),
                sp.stale_nodes,
                sp.nvm_reads,
                sp.nvm_writes
            );
        }
        let _ = write!(
            s,
            "],\"nvm\":{{\"reads\":{},\"writes\":{}}},\"energy_pj\":{}}}",
            l.totals.nvm_reads,
            l.totals.nvm_writes,
            l.totals.energy_pj()
        );
    }
    let _ = write!(s, "],\"unavailability_ns\":{}}}", out.unavailability_ns());
    s
}

impl ShardServeGridReport {
    /// The grid as one versioned JSON document (kind `serve-shard`).
    ///
    /// Byte-stable: field order is fixed, floats go through
    /// [`json_f64`], and nothing thread- or wall-clock-dependent is
    /// encoded.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&schema_preamble("serve-shard"));
        let _ = write!(
            s,
            "\"horizon_ns\":{},\"seed\":{},\"lanes\":{},\"cells\":[",
            self.horizon_ns, self.seed, self.lanes
        );
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&cell_json(cell));
        }
        s.push_str("]}");
        s
    }

    /// A human-readable table, one row per (cell, lane).
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<8} {:<10} {:>5} {:>9} {:>12} {:>12} {:>8} {:>12}",
            "scheme", "scenario", "lane", "requests", "p50_ns", "p99_ns", "crashes", "unavail_ms"
        );
        for c in &self.cells {
            for l in &c.lanes {
                let _ = writeln!(
                    s,
                    "{:<8} {:<10} {:>5} {:>9} {:>12} {:>12} {:>8} {:>12.3}",
                    c.scheme.label(),
                    c.scenario,
                    l.lane,
                    l.requests,
                    l.latency.quantile(0.50),
                    l.latency.quantile(0.99),
                    l.downtime.count(),
                    l.downtime.total_ns() as f64 / 1e6
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ServeConfig {
        ServeConfig::quick(5)
    }

    #[test]
    fn lane_counts_sum_and_tenants_route_by_placement() {
        let cfg = quick();
        let sc = &shard_scenarios(&cfg, 4, 2.0)[0];
        let out = simulate_sharded(ServeScheme::Star, sc, &cfg);
        assert!(out.requests() > 0);
        assert_eq!(
            out.requests(),
            out.tenants.iter().map(|t| t.requests).sum::<u64>()
        );
        assert_eq!(out.requests(), out.latency.count());
        // hot-shard places tenant t on lane t, so the lane and tenant
        // request counts coincide.
        for (t, l) in out.tenants.iter().zip(&out.lanes) {
            assert_eq!(t.requests, l.requests);
        }
        // Lane 0 carries the hot tenant: strictly the most traffic.
        assert!(out.lanes[0].requests > out.lanes[1].requests);
    }

    #[test]
    fn skewed_placement_packs_the_lower_lanes() {
        let cfg = quick();
        let sc = &shard_scenarios(&cfg, 4, 2.0)[1];
        assert_eq!(sc.name, "skew-place");
        let out = simulate_sharded(ServeScheme::Star, sc, &cfg);
        // Upper-half lanes have no tenants placed on them.
        assert_eq!(out.lanes[2].requests, 0);
        assert_eq!(out.lanes[3].requests, 0);
        assert_eq!(
            out.lanes[0].requests + out.lanes[1].requests,
            out.requests()
        );
    }

    #[test]
    fn crash_blast_radius_is_one_lane() {
        let cfg = quick();
        let sc = &shard_scenarios(&cfg, 4, 2.0)[0];
        let out = simulate_sharded(ServeScheme::Star, sc, &cfg);
        // The crash plan hits lanes 0 and 3 only.
        assert_eq!(out.lanes[0].downtime.count(), 1);
        assert_eq!(out.lanes[3].downtime.count(), 1);
        for lane in [1usize, 2] {
            assert_eq!(out.lanes[lane].downtime.count(), 0);
        }
        // Unaffected lanes match a crash-free run exactly: outages on
        // other lanes are invisible to them.
        let mut calm_sc = sc.clone();
        calm_sc.crash_plan.clear();
        let calm = simulate_sharded(ServeScheme::Star, &calm_sc, &cfg);
        for lane in [1usize, 2] {
            assert_eq!(out.lanes[lane].requests, calm.lanes[lane].requests);
            assert_eq!(out.lanes[lane].latency, calm.lanes[lane].latency);
            assert_eq!(out.lanes[lane].totals, calm.lanes[lane].totals);
        }
        // The crashed hot lane did pay: it has strictly more downtime
        // than the calm run's zero.
        assert!(out.lanes[0].downtime.total_ns() > 0);
        assert_eq!(
            out.unavailability_ns(),
            out.lanes.iter().map(|l| l.downtime.total_ns()).sum::<u64>()
        );
    }

    #[test]
    fn grid_json_is_versioned_and_thread_independent() {
        let cfg = quick();
        let scenarios = shard_scenarios(&cfg, 2, 2.0);
        let serial = run_sharded_grid(&cfg, &scenarios);
        assert_eq!(serial.cells.len(), 2 * ServeScheme::ALL.len());
        let j = serial.to_json();
        assert!(j.starts_with(&format!(
            "{{\"schema_version\":{},\"kind\":\"serve-shard\",",
            star_core::SCHEMA_VERSION
        )));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"scenario\":\"hot-shard\""));
        assert!(j.contains("\"scenario\":\"skew-place\""));
        assert!(!j.contains("threads"), "thread count must not leak");
        for threads in [2usize, 4] {
            let cfg_t = ServeConfig { threads, ..quick() };
            let par = run_sharded_grid(&cfg_t, &scenarios);
            assert_eq!(par.to_json(), j, "threads {threads}");
        }
        let table = serial.to_table();
        assert_eq!(
            table.lines().count(),
            1 + serial.cells.len() * serial.lanes as usize
        );
    }
}
