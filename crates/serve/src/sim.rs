//! The discrete-event service loop: open-loop arrivals, a single-server
//! FIFO queue over the backend's modeled time, and mid-stream power
//! failures.
//!
//! # Clock coupling
//!
//! Three clocks cooperate:
//!
//! 1. The **service clock** (ns) orders arrivals, completions and power
//!    failures.
//! 2. The **backend clock** (ps) advances only while the backend
//!    executes a request; a request's *service time* is the backend
//!    clock's delta across its GET/PUT, which is how modeled NVM
//!    latency, write-queue stalls and metadata misses surface in
//!    user-visible latency.
//! 3. The **recovery clock** is the paper's 100 ns/line model; an
//!    outage occupies `reboot + recovery` on the service clock.
//!
//! A request's latency is `completion − arrival`: queueing delay behind
//! earlier requests (and behind outages) plus its own service time.
//! Power failures land on request boundaries — the in-flight request
//! drains first; persist-point-granular crash placement inside a request
//! is star-faultsim's domain, not the service model's.

use crate::kv::{HorizonTotals, SecureKv};
use crate::scenario::{Scenario, ServeConfig, ServeScheme};
use star_core::DowntimeLedger;
use star_rng::SimRng;
use star_trace::Log2Hist;
use star_workloads::{OpenLoopArrivals, Zipfian};

/// Per-tenant service statistics.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant label.
    pub name: &'static str,
    /// Requests served.
    pub requests: u64,
    /// GETs among them.
    pub reads: u64,
    /// Durable PUTs among them.
    pub writes: u64,
    /// Per-request latency, ns.
    pub latency: Log2Hist,
}

/// The outcome of one scheme×scenario service run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Backend scheme.
    pub scheme: ServeScheme,
    /// Scenario label.
    pub scenario: &'static str,
    /// Simulated horizon, ns.
    pub horizon_ns: u64,
    /// Requests served (arrivals inside the horizon; the queue drains
    /// past the horizon, so every arrival is served).
    pub requests: u64,
    /// Requests whose completion also fell inside the horizon — the
    /// goodput numerator.
    pub completed_in_horizon: u64,
    /// Requests that arrived while the service was down and had to wait
    /// out the outage.
    pub delayed_by_downtime: u64,
    /// All-tenant per-request latency, ns.
    pub latency: Log2Hist,
    /// Per-tenant breakdown, in scenario order.
    pub tenants: Vec<TenantStats>,
    /// Every outage, in injection order.
    pub downtime: DowntimeLedger,
    /// Cumulative device totals over the horizon.
    pub totals: HorizonTotals,
}

impl ServeOutcome {
    /// User-visible unavailability: the sum of every outage's dead time.
    pub fn unavailability_ns(&self) -> u64 {
        self.downtime.total_ns()
    }

    /// Completions per simulated second.
    pub fn goodput_rps(&self) -> f64 {
        self.completed_in_horizon as f64 / (self.horizon_ns as f64 / 1e9)
    }
}

/// One generated request.
pub(crate) struct Req {
    pub(crate) at_ns: u64,
    pub(crate) tenant: u32,
    pub(crate) key: u64,
    pub(crate) is_read: bool,
}

/// Derives a tenant-stream seed from the master seed (see
/// [`star_rng::lane_seed`]; adjacent tenants get unrelated streams).
fn stream_seed(master: u64, lane: u64) -> u64 {
    star_rng::lane_seed(master, lane)
}

/// Generates every tenant's request stream up front and merges them by
/// arrival time (ties broken by tenant index; a single tenant's stream
/// is strictly increasing). Shared by the single-store simulation and
/// the sharded backend, which must see *identical* traffic for a given
/// tenant population.
pub(crate) fn generate_requests(
    tenants: &[crate::scenario::TenantSpec],
    cfg: &ServeConfig,
) -> Vec<Req> {
    let mut reqs: Vec<Req> = Vec::new();
    for (ti, t) in tenants.iter().enumerate() {
        let zipf = Zipfian::new(t.keys, t.zipf_theta);
        let mut op_rng = SimRng::seed_from_u64(stream_seed(cfg.seed, ti as u64 * 2 + 1));
        for at_ns in OpenLoopArrivals::new(
            stream_seed(cfg.seed, ti as u64 * 2),
            t.rate_per_s,
            t.shape.clone(),
            cfg.horizon_ns,
        ) {
            reqs.push(Req {
                at_ns,
                tenant: ti as u32,
                key: t.key_base + zipf.sample(&mut op_rng),
                is_read: op_rng.gen_bool(t.read_fraction),
            });
        }
    }
    reqs.sort_by_key(|r| (r.at_ns, r.tenant));
    reqs
}

/// Runs one scheme through one scenario and returns its outcome.
///
/// Deterministic in `(scheme, scenario, cfg.seed, cfg.horizon_ns,
/// cfg.mem)`; `cfg.threads` plays no role here, which is what makes the
/// grid byte-identical at any thread count.
pub fn simulate(scheme: ServeScheme, scenario: &Scenario, cfg: &ServeConfig) -> ServeOutcome {
    let reqs = generate_requests(&scenario.tenants, cfg);

    let mut crashes = scenario.crash_plan.clone();
    crashes.sort_unstable();

    let mut kv = SecureKv::new(scheme, cfg.mem.clone());
    let mut tenants: Vec<TenantStats> = scenario
        .tenants
        .iter()
        .map(|t| TenantStats {
            name: t.name,
            requests: 0,
            reads: 0,
            writes: 0,
            latency: Log2Hist::new(),
        })
        .collect();
    let mut latency = Log2Hist::new();
    let mut downtime = DowntimeLedger::new();
    let mut crash_i = 0usize;
    let mut server_free_ns = 0u64;
    let mut last_outage_end_ns = 0u64;
    let mut completed_in_horizon = 0u64;
    let mut delayed_by_downtime = 0u64;
    let mut put_seq = 1u64;

    let fire_crash = |kv: &mut SecureKv,
                      downtime: &mut DowntimeLedger,
                      server_free_ns: &mut u64,
                      last_outage_end_ns: &mut u64,
                      at_ns: u64| {
        // The in-flight request drains before power is lost takes
        // effect on the queue; the machine is then dead for the span.
        let span = kv.crash_recover(at_ns, scenario.reboot_ns);
        let outage_end = at_ns.max(*server_free_ns) + span.total_ns();
        downtime.push(span);
        *server_free_ns = (*server_free_ns).max(outage_end);
        *last_outage_end_ns = outage_end;
    };

    for r in &reqs {
        // Fire every power failure due before this request starts.
        while crash_i < crashes.len() && crashes[crash_i] <= server_free_ns.max(r.at_ns) {
            fire_crash(
                &mut kv,
                &mut downtime,
                &mut server_free_ns,
                &mut last_outage_end_ns,
                crashes[crash_i],
            );
            crash_i += 1;
        }
        star_scope::span!("serve/request");
        let start_ns = server_free_ns.max(r.at_ns);
        if r.at_ns < last_outage_end_ns {
            delayed_by_downtime += 1;
        }
        let t0_ps = kv.now_ps();
        let ts = &mut tenants[r.tenant as usize];
        if r.is_read {
            let _ = kv.get(r.key);
            ts.reads += 1;
        } else {
            kv.put(r.key, put_seq);
            put_seq += 1;
            ts.writes += 1;
        }
        let service_ns = (kv.now_ps() - t0_ps).div_ceil(1000).max(1);
        let done_ns = start_ns + service_ns;
        let lat_ns = done_ns - r.at_ns;
        ts.requests += 1;
        ts.latency.observe(lat_ns);
        latency.observe(lat_ns);
        if done_ns <= cfg.horizon_ns {
            completed_in_horizon += 1;
        }
        server_free_ns = done_ns;
    }
    // Power failures scheduled after the last arrival still happen.
    while crash_i < crashes.len() && crashes[crash_i] < cfg.horizon_ns {
        fire_crash(
            &mut kv,
            &mut downtime,
            &mut server_free_ns,
            &mut last_outage_end_ns,
            crashes[crash_i],
        );
        crash_i += 1;
    }

    ServeOutcome {
        scheme,
        scenario: scenario.name,
        horizon_ns: cfg.horizon_ns,
        requests: reqs.len() as u64,
        completed_in_horizon,
        delayed_by_downtime,
        latency,
        tenants,
        downtime,
        totals: kv.finish(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{standard_scenarios, TenantSpec};
    use star_workloads::LoadShape;

    fn quick() -> ServeConfig {
        ServeConfig::quick(5)
    }

    #[test]
    fn tenant_counts_sum_to_total_and_quantiles_are_ordered() {
        let cfg = quick();
        let sc = &standard_scenarios(&cfg)[0];
        let out = simulate(ServeScheme::Star, sc, &cfg);
        assert!(out.requests > 0);
        assert_eq!(
            out.requests,
            out.tenants.iter().map(|t| t.requests).sum::<u64>()
        );
        assert_eq!(out.requests, out.latency.count());
        let (p50, p99, p999) = (
            out.latency.quantile(0.50),
            out.latency.quantile(0.99),
            out.latency.quantile(0.999),
        );
        assert!(p50 <= p99 && p99 <= p999);
        assert!(p999 <= out.latency.max());
    }

    #[test]
    fn unavailability_is_the_sum_of_spans_and_crashes_all_fire() {
        let cfg = quick();
        for sc in &standard_scenarios(&cfg) {
            let out = simulate(ServeScheme::Star, sc, &cfg);
            assert_eq!(out.downtime.count(), sc.crash_plan.len(), "{}", sc.name);
            assert!(out.unavailability_ns() > 0, "{}", sc.name);
            assert_eq!(
                out.unavailability_ns(),
                out.downtime
                    .spans()
                    .iter()
                    .map(|s| s.total_ns())
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn crash_after_last_arrival_still_counts() {
        let cfg = quick();
        let sc = Scenario {
            name: "tail-crash",
            tenants: vec![TenantSpec {
                name: "only",
                rate_per_s: 1.0,
                zipf_theta: 0.9,
                keys: 64,
                key_base: 0,
                read_fraction: 0.5,
                shape: LoadShape::flat(),
            }],
            // Just before the horizon: almost surely after the last
            // arrival at 1 req/s.
            crash_plan: vec![cfg.horizon_ns - 1],
            reboot_ns: 1_000,
        };
        let out = simulate(ServeScheme::Strict, &sc, &cfg);
        assert_eq!(out.downtime.count(), 1);
        assert!(out.unavailability_ns() >= 1_000);
    }

    #[test]
    fn no_crash_plan_means_no_unavailability() {
        let cfg = quick();
        let mut sc = standard_scenarios(&cfg)[0].clone();
        sc.crash_plan.clear();
        let out = simulate(ServeScheme::Wb, &sc, &cfg);
        assert_eq!(out.downtime.count(), 0);
        assert_eq!(out.unavailability_ns(), 0);
        assert_eq!(out.delayed_by_downtime, 0);
    }

    #[test]
    fn downtime_delays_requests_behind_the_outage() {
        let cfg = quick();
        // Load heavy enough that a multi-ms outage must catch arrivals.
        let sc = &crate::scenario::standard_scenarios_at(&cfg, 2_000.0)[0];
        // WB's rebuild is the longest outage of any backend.
        let out = simulate(ServeScheme::Wb, sc, &cfg);
        assert!(
            out.delayed_by_downtime > 0,
            "full-rebuild outages must catch arrivals"
        );
        // And the same traffic without crashes has a strictly lower
        // worst-case latency: the outage is what produced the tail.
        let mut quiet = sc.clone();
        quiet.crash_plan.clear();
        let calm = simulate(ServeScheme::Wb, &quiet, &cfg);
        assert!(out.latency.max() > calm.latency.max());
    }

    #[test]
    fn identical_inputs_identical_outcomes() {
        let cfg = quick();
        let sc = &standard_scenarios(&cfg)[1];
        let a = simulate(ServeScheme::Anubis, sc, &cfg);
        let b = simulate(ServeScheme::Anubis, sc, &cfg);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.downtime, b.downtime);
        assert_eq!(a.totals, b.totals);
    }
}
