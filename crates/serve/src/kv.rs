//! The secure-KV front-end: one backend, crash/recover on the service
//! clock, and cumulative device accounting across crash epochs.

use crate::scenario::ServeScheme;
use star_core::triad::{TriadConfig, TriadMemory};
use star_core::{
    recover, DowntimeSpan, Instrumented, RecoveryError, RunReport, SecureMemConfig, SecureMemory,
    NS_PER_LINE_ACCESS,
};
use star_nvm::WearSummary;
use star_prof::cause::NUM_CAUSES;

/// Device totals accumulated over the whole service horizon.
///
/// The engine's counters reset when a crash epoch ends (a resumed
/// controller starts fresh clocks and statistics), so the front-end
/// absorbs each epoch's report at crash time and again at the end of the
/// run; Triad's controller model never resets and is absorbed once.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HorizonTotals {
    /// NVM line reads across all epochs.
    pub nvm_reads: u64,
    /// NVM line writes across all epochs.
    pub nvm_writes: u64,
    /// Read energy, pJ.
    pub energy_read_pj: u64,
    /// Write energy, pJ.
    pub energy_write_pj: u64,
    /// Write counts by [`star_prof::WriteCause::index`] slot, summed
    /// across epochs.
    pub writes_by_cause: [u64; NUM_CAUSES],
    /// Wear summary of the final epoch's device (per-line wear does not
    /// survive the modeled full-rebuild of non-recoverable schemes, so
    /// this is the live device's distribution, not a horizon union).
    pub wear: Option<WearSummary>,
}

impl HorizonTotals {
    fn absorb_report(&mut self, rep: &RunReport) {
        self.nvm_reads += rep.nvm.total_reads();
        self.nvm_writes += rep.nvm.total_writes();
        self.energy_read_pj += rep.energy_read_pj;
        self.energy_write_pj += rep.energy_write_pj;
        for (slot, n) in self.writes_by_cause.iter_mut().zip(rep.prof.causes) {
            *slot += n;
        }
        self.wear = Some(rep.wear);
    }

    /// Total energy, pJ.
    pub fn energy_pj(&self) -> u64 {
        self.energy_read_pj + self.energy_write_pj
    }
}

enum Backend {
    /// `Option` so a crash can consume the engine by value.
    Engine(Option<Box<SecureMemory>>),
    Triad(Box<TriadMemory>),
}

/// Modeled request-processing compute (instructions) charged per KV
/// operation on the engine backends — parsing, hashing, dispatch — so a
/// cache-hit GET still occupies the server for a realistic sliver of
/// time instead of zero. (Triad's controller model already charges
/// device latency on its own clock.)
const OP_WORK_INSTRUCTIONS: u64 = 200;

/// A secure-KV store over one backend scheme.
///
/// GET/PUT advance the backend's modeled clock; the caller reads the
/// clock before and after an operation to obtain its service time.
/// [`crash_recover`](Self::crash_recover) models a power failure at a
/// request boundary: the scheme's recovery runs (or, for WB, a full
/// rebuild) and the resulting [`DowntimeSpan`] is returned for the
/// caller's ledger.
pub struct SecureKv {
    scheme: ServeScheme,
    backend: Backend,
    mem_cfg: SecureMemConfig,
    totals: HorizonTotals,
}

impl SecureKv {
    /// Builds the store.
    pub fn new(scheme: ServeScheme, mem_cfg: SecureMemConfig) -> Self {
        let backend = match scheme.engine_kind() {
            Some(kind) => Backend::Engine(Some(Box::new(SecureMemory::new(kind, mem_cfg.clone())))),
            None => Backend::Triad(Box::new(TriadMemory::new(TriadConfig {
                data_lines: mem_cfg.data_lines,
                persist_levels: 2,
                nvm: mem_cfg.nvm,
                key_seed: mem_cfg.key_seed,
            }))),
        };
        Self {
            scheme,
            backend,
            mem_cfg,
            totals: HorizonTotals::default(),
        }
    }

    /// The backend scheme.
    pub fn scheme(&self) -> ServeScheme {
        self.scheme
    }

    /// The backend's modeled clock, ps. Resets to zero when a crash
    /// epoch ends; only within-request deltas are meaningful.
    pub fn now_ps(&self) -> u64 {
        match &self.backend {
            Backend::Engine(m) => m.as_ref().expect("engine live").now_ps(),
            Backend::Triad(t) => t.now_ps(),
        }
    }

    /// GET: verified load of `key`'s line; 0 for a never-written key.
    pub fn get(&mut self, key: u64) -> u64 {
        match &mut self.backend {
            Backend::Engine(m) => {
                let m = m.as_mut().expect("engine live");
                m.work(OP_WORK_INSTRUCTIONS);
                m.read_data(key)
            }
            Backend::Triad(t) => t.read_data(key),
        }
    }

    /// Durable PUT: writes `value` to `key`'s line and persists it
    /// through the scheme's full persistence path.
    pub fn put(&mut self, key: u64, value: u64) {
        match &mut self.backend {
            Backend::Engine(m) => {
                let m = m.as_mut().expect("engine live");
                m.work(OP_WORK_INSTRUCTIONS);
                m.write_data(key, value);
                m.persist_data(key);
                m.fence();
            }
            Backend::Triad(t) => t.write_data(key, value),
        }
    }

    /// Power failure at service time `at_ns`: volatile state is lost,
    /// the platform reboots (`reboot_ns`), and the scheme's recovery
    /// runs on the same clock.
    ///
    /// * Recoverable engine schemes crash to a [`star_core::CrashImage`],
    ///   run [`star_core::recover`] (asserting the oracle `correct`
    ///   flag), and resume from the restored image.
    /// * WB is not recoverable: the model charges a full scan-and-rebuild
    ///   of the data and metadata regions (100 ns per line, the paper's
    ///   cost model) and restarts on a *fresh* store — the stored values
    ///   are gone, which is precisely the baseline's deficiency.
    /// * Triad re-reads every persisted counter block and rebuilds its
    ///   tree bottom-up; its controller model is non-destructive, so the
    ///   store survives with the same contents.
    pub fn crash_recover(&mut self, at_ns: u64, reboot_ns: u64) -> DowntimeSpan {
        star_scope::span!("serve/recover");
        match &mut self.backend {
            Backend::Engine(slot) => {
                let mem = *slot.take().expect("engine live");
                self.totals.absorb_report(&mem.report());
                let kind = mem.scheme();
                let mut image = mem.crash();
                match recover(&mut image) {
                    Ok(rep) => {
                        assert!(rep.verified, "attack-free recovery verifies");
                        assert!(rep.correct, "recovery restores the pre-crash cache");
                        *slot = Some(Box::new(SecureMemory::resume_from_image(
                            &image,
                            self.mem_cfg.clone(),
                        )));
                        DowntimeSpan::from_recovery(at_ns, reboot_ns, &rep)
                    }
                    Err(RecoveryError::NotRecoverable(_)) => {
                        let meta_lines = image.geometry().total_meta_lines();
                        let scanned = self.mem_cfg.data_lines + meta_lines;
                        *slot = Some(Box::new(SecureMemory::new(kind, self.mem_cfg.clone())));
                        DowntimeSpan {
                            at_ns,
                            reboot_ns,
                            recovery_ns: (scanned + meta_lines) * NS_PER_LINE_ACCESS,
                            stale_nodes: 0,
                            nvm_reads: scanned,
                            nvm_writes: meta_lines,
                        }
                    }
                    Err(e) => panic!("unexpected recovery failure: {e}"),
                }
            }
            Backend::Triad(t) => {
                let (reads, time_ns, verified) = t.crash_and_recover();
                assert!(verified, "attack-free Triad recovery verifies");
                DowntimeSpan {
                    at_ns,
                    reboot_ns,
                    recovery_ns: time_ns,
                    stale_nodes: 0,
                    nvm_reads: reads,
                    nvm_writes: 0,
                }
            }
        }
    }

    /// Ends the horizon: absorbs the final epoch's device counters and
    /// returns the cumulative totals.
    pub fn finish(mut self) -> HorizonTotals {
        match &self.backend {
            Backend::Engine(m) => {
                let rep = m.as_ref().expect("engine live").report();
                self.totals.absorb_report(&rep);
            }
            Backend::Triad(t) => {
                let stats = t.nvm_stats();
                let energy = self.mem_cfg.nvm.energy;
                self.totals.nvm_reads += stats.total_reads();
                self.totals.nvm_writes += stats.total_writes();
                self.totals.energy_read_pj += energy.read_pj * stats.total_reads();
                self.totals.energy_write_pj += energy.write_pj * stats.total_writes();
                let prof = t.prof_summary();
                for (slot, n) in self.totals.writes_by_cause.iter_mut().zip(prof.causes) {
                    *slot += n;
                }
                self.totals.wear = Some(t.wear_summary());
            }
        }
        self.totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ServeConfig;

    fn quick_cfg() -> SecureMemConfig {
        ServeConfig::quick(1).mem
    }

    #[test]
    fn put_get_roundtrips_on_every_backend() {
        for scheme in ServeScheme::ALL {
            let mut kv = SecureKv::new(scheme, quick_cfg());
            for i in 0..40u64 {
                kv.put(i * 3, 1000 + i);
            }
            for i in 0..40u64 {
                assert_eq!(kv.get(i * 3), 1000 + i, "{}", scheme.label());
            }
            assert_eq!(kv.get(1234), 0, "never-written key reads 0");
        }
    }

    #[test]
    fn operations_cost_modeled_time() {
        for scheme in ServeScheme::ALL {
            let mut kv = SecureKv::new(scheme, quick_cfg());
            let t0 = kv.now_ps();
            kv.put(1, 7);
            assert!(
                kv.now_ps() > t0,
                "{} PUT advances the clock",
                scheme.label()
            );
            let t1 = kv.now_ps();
            let _ = kv.get(1);
            assert!(
                kv.now_ps() > t1,
                "{} GET advances the clock",
                scheme.label()
            );
        }
    }

    #[test]
    fn recoverable_schemes_keep_data_across_a_crash() {
        for scheme in [
            ServeScheme::Strict,
            ServeScheme::Anubis,
            ServeScheme::Star,
            ServeScheme::Triad,
        ] {
            let mut kv = SecureKv::new(scheme, quick_cfg());
            for i in 0..64u64 {
                kv.put(i * 7, 0xc0de + i);
            }
            let span = kv.crash_recover(5_000, 1_000);
            assert_eq!(span.at_ns, 5_000);
            assert_eq!(span.reboot_ns, 1_000);
            for i in 0..64u64 {
                assert_eq!(kv.get(i * 7), 0xc0de + i, "{}", scheme.label());
            }
        }
    }

    #[test]
    fn star_recovery_is_dirty_set_proportional_and_wb_rebuilds() {
        let cfg = quick_cfg();
        let mut star = SecureKv::new(ServeScheme::Star, cfg.clone());
        let mut wb = SecureKv::new(ServeScheme::Wb, cfg.clone());
        for i in 0..100u64 {
            star.put(i, i + 1);
            wb.put(i, i + 1);
        }
        let star_span = wb_vs_star(&mut star);
        let wb_span = wb_vs_star(&mut wb);
        assert!(star_span.recovery_ns > 0);
        assert!(
            wb_span.recovery_ns > star_span.recovery_ns * 10,
            "WB full rebuild ({} ns) must dwarf STAR's dirty-set recovery ({} ns)",
            wb_span.recovery_ns,
            star_span.recovery_ns
        );
        // WB's rebuild wipes the store: the data is gone.
        assert_eq!(wb.get(5), 0);
        assert_eq!(star.get(5), 6);
        fn wb_vs_star(kv: &mut SecureKv) -> DowntimeSpan {
            kv.crash_recover(1_000, 0)
        }
    }

    #[test]
    fn totals_accumulate_across_crash_epochs() {
        let mut kv = SecureKv::new(ServeScheme::Star, quick_cfg());
        for i in 0..50u64 {
            kv.put(i, i + 1);
        }
        kv.crash_recover(1_000, 0);
        for i in 0..50u64 {
            kv.put(i, i + 100);
        }
        let totals = kv.finish();
        assert!(totals.nvm_writes >= 100, "both epochs' writes counted");
        assert_eq!(
            totals.writes_by_cause.iter().sum::<u64>(),
            totals.nvm_writes,
            "provenance decomposes the horizon's writes"
        );
        assert!(totals.energy_pj() > 0);
        assert!(totals.wear.is_some());
    }
}
